"""Unit tests for directional safety levels and their router."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.faults import FaultSet, uniform_random
from repro.mesh import Direction, Mesh2D
from repro.routing import (
    FaultModelView,
    MinimalRouter,
    SafetyLevelRouter,
    XYRouter,
    safety_levels,
)


def view_for(coords, shape=(10, 10)):
    m = Mesh2D(*shape)
    res = label_mesh(m, FaultSet.from_coords(shape, coords))
    return FaultModelView.from_regions(res)


class TestSafetyLevels:
    def test_clean_grid_levels_are_edge_distances(self):
        enabled = np.ones((5, 5), dtype=bool)
        lv = safety_levels(enabled)
        assert lv[Direction.EAST][0, 0] == 4
        assert lv[Direction.EAST][4, 0] == 0
        assert lv[Direction.WEST][4, 2] == 4
        assert lv[Direction.NORTH][2, 0] == 4
        assert lv[Direction.SOUTH][2, 4] == 4

    def test_disabled_node_truncates_runs(self):
        enabled = np.ones((6, 6), dtype=bool)
        enabled[3, 2] = False
        lv = safety_levels(enabled)
        assert lv[Direction.EAST][0, 2] == 2   # runs up to x=2
        assert lv[Direction.EAST][4, 2] == 1   # unobstructed beyond
        assert lv[Direction.WEST][5, 2] == 1
        assert lv[Direction.NORTH][3, 0] == 1
        assert lv[Direction.SOUTH][3, 5] == 2

    def test_levels_match_bruteforce(self):
        rng = np.random.default_rng(3)
        enabled = rng.random((8, 8)) > 0.2
        lv = safety_levels(enabled)
        for x in range(8):
            for y in range(8):
                run = 0
                cx = x + 1
                while cx < 8 and enabled[cx, y]:
                    run += 1
                    cx += 1
                assert lv[Direction.EAST][x, y] == run, (x, y)


class TestSafetyLevelRouter:
    def test_fault_free_minimal(self):
        v = view_for([])
        r = SafetyLevelRouter(v).route((0, 0), (9, 7))
        assert r.delivered and r.is_minimal

    def test_avoids_dead_end_xy_hits(self):
        # A fault on the XY leg: XY drops, the safety-level router sees
        # the short eastward run and corrects Y first.
        v = view_for([(5, 0)])
        xy = XYRouter(v).route((0, 0), (9, 5))
        assert not xy.delivered
        sl = SafetyLevelRouter(v).route((0, 0), (9, 5))
        assert sl.delivered and sl.is_minimal

    def test_never_misroutes(self):
        rng = np.random.default_rng(4)
        v = view_for([(3, 3), (6, 2), (4, 7)])
        router = SafetyLevelRouter(v)
        for _ in range(30):
            s, d = v.random_enabled_pair(rng)
            r = router.route(s, d)
            if r.delivered:
                assert r.is_minimal

    @pytest.mark.parametrize("seed", range(4))
    def test_between_xy_and_exact_minimal(self, seed):
        # Delivery dominance: XY <= safety-level <= exact minimal.
        rng = np.random.default_rng(seed)
        m = Mesh2D(14, 14)
        faults = uniform_random(m.shape, 16, rng)
        res = label_mesh(m, faults)
        v = FaultModelView.from_regions(res)
        xy, sl, exact = XYRouter(v), SafetyLevelRouter(v), MinimalRouter(v)
        pair_rng = np.random.default_rng(seed + 77)
        n_xy = n_sl = n_exact = 0
        for _ in range(60):
            s, d = v.random_enabled_pair(pair_rng)
            n_xy += xy.route(s, d).delivered
            n_sl += sl.route(s, d).delivered
            n_exact += exact.route(s, d).delivered
        assert n_xy <= n_sl <= n_exact
