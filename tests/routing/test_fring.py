"""Unit tests for the rectangle f-ring router."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.errors import RoutingError
from repro.faults import FaultSet, clustered, uniform_random
from repro.mesh import Mesh2D
from repro.routing import (
    BFSRouter,
    DropReason,
    FaultModelView,
    FRingRouter,
)


def block_view(coords, shape=(12, 12)):
    m = Mesh2D(*shape)
    res = label_mesh(m, FaultSet.from_coords(shape, coords))
    return FaultModelView.from_blocks(res)


class TestConstruction:
    def test_accepts_block_view(self):
        FRingRouter(block_view([(4, 4), (5, 5)]))

    def test_rejects_polygonal_obstacles(self):
        m = Mesh2D(12, 12)
        res = label_mesh(
            m, FaultSet.from_coords((12, 12), [(4, 4), (5, 5), (6, 6)])
        )
        # The region view's obstacle is a staircase, not a rectangle.
        view = FaultModelView.from_regions(res)
        with pytest.raises(RoutingError):
            FRingRouter(view)


class TestDetours:
    def test_fault_free_is_minimal(self):
        r = FRingRouter(block_view([])).route((0, 0), (11, 7))
        assert r.delivered and r.is_minimal

    def test_detours_around_single_block(self):
        # A 2x2 block straight across the row.
        v = block_view([(5, 5), (6, 6)])
        r = FRingRouter(v).route((0, 5), (11, 5))
        assert r.delivered
        assert all(v.is_enabled(c) for c in r.path)
        # Around a 2-wide block: up to the rim, across, back = 4 extra.
        assert r.detour <= 4

    def test_detour_prefers_nearer_face(self):
        # Destination above the block: the packet should go over the
        # top, not under the bottom.
        v = block_view([(5, 5), (6, 6)])
        r = FRingRouter(v).route((0, 5), (11, 7))
        assert r.delivered
        assert all(c[1] >= 4 for c in r.path)

    def test_dest_in_block_shadow(self):
        # Destination column inside the block's x-extent, on the far
        # side in y: the packet must round a corner of the rectangle.
        v = block_view([(5, 5), (6, 6)])
        r = FRingRouter(v).route((5, 0), (5, 11))
        assert r.delivered

    def test_block_on_mesh_edge(self):
        # Block hugging the south edge: only the north face exists.
        v = block_view([(5, 0), (6, 1)])
        r = FRingRouter(v).route((0, 0), (11, 0))
        assert r.delivered
        assert max(c[1] for c in r.path) >= 2  # went over the top face (y=2)

    def test_sealed_corner_reports_blocked(self):
        v = block_view([(10, 11), (10, 10), (11, 10)])
        r = FRingRouter(v).route((0, 0), (11, 11))
        assert not r.delivered
        assert r.reason in (DropReason.BLOCKED, DropReason.BAD_ENDPOINT)


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_delivers_whenever_oracle_does(self, seed):
        rng = np.random.default_rng(seed)
        m = Mesh2D(16, 16)
        faults = clustered(m.shape, 16, rng, clusters=2, spread=1.5)
        res = label_mesh(m, faults)
        v = FaultModelView.from_blocks(res)
        fring = FRingRouter(v)
        oracle = BFSRouter(v)
        pairs_rng = np.random.default_rng(seed + 99)
        for _ in range(40):
            s, d = v.random_enabled_pair(pairs_rng)
            if oracle.route(s, d).delivered:
                got = fring.route(s, d)
                assert got.delivered, (s, d, got.reason)
                assert got.hops >= oracle.route(s, d).hops

    @pytest.mark.parametrize("seed", range(4))
    def test_paths_legal_on_random_patterns(self, seed):
        rng = np.random.default_rng(seed + 40)
        m = Mesh2D(14, 14)
        faults = uniform_random(m.shape, 18, rng)
        res = label_mesh(m, faults)
        v = FaultModelView.from_blocks(res)
        router = FRingRouter(v)
        pair_rng = np.random.default_rng(seed)
        for _ in range(30):
            s, d = v.random_enabled_pair(pair_rng)
            r = router.route(s, d)
            for a, b in zip(r.path, r.path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
                assert v.is_enabled(b)
