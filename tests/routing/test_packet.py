"""Unit tests for packets and route results."""

from repro.routing import DropReason, RouteResult
from repro.routing.packet import finish


class TestRouteResult:
    def test_delivered_result(self):
        r = finish((0, 0), (2, 0), [(0, 0), (1, 0), (2, 0)], DropReason.NONE)
        assert r.delivered
        assert r.hops == 2
        assert r.manhattan == 2
        assert r.detour == 0
        assert r.is_minimal

    def test_detoured_result(self):
        path = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 0)]
        r = finish((0, 0), (2, 0), path, DropReason.NONE)
        assert r.delivered and r.hops == 4 and r.detour == 2
        assert not r.is_minimal

    def test_dropped_result(self):
        r = finish((0, 0), (5, 5), [(0, 0), (1, 0)], DropReason.BLOCKED)
        assert not r.delivered
        assert r.reason is DropReason.BLOCKED
        assert r.hops == 1

    def test_self_delivery(self):
        r = finish((3, 3), (3, 3), [(3, 3)], DropReason.NONE)
        assert r.delivered and r.hops == 0 and r.is_minimal

    def test_dropped_is_never_minimal(self):
        r = finish((0, 0), (1, 0), [(0, 0)], DropReason.BAD_ENDPOINT)
        assert not r.is_minimal
