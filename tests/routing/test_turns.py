"""Unit tests for the turn-model routers."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.faults import FaultSet, uniform_random
from repro.mesh import Mesh2D
from repro.routing import (
    FaultModelView,
    NegativeFirstRouter,
    WestFirstRouter,
    is_deadlock_free,
)


def clean_view(n=6):
    return FaultModelView(Mesh2D(n, n), np.ones((n, n), dtype=bool))


def faulty_view(coords, shape=(10, 10)):
    m = Mesh2D(*shape)
    res = label_mesh(m, FaultSet.from_coords(shape, coords))
    return FaultModelView.from_regions(res)


ROUTERS = [WestFirstRouter, NegativeFirstRouter]


class TestFaultFreeDelivery:
    @pytest.mark.parametrize("router_cls", ROUTERS)
    def test_all_pairs_deliver_minimally(self, router_cls):
        view = clean_view(5)
        router = router_cls(view)
        for sx in range(5):
            for sy in range(5):
                for dx in range(5):
                    for dy in range(5):
                        r = router.route((sx, sy), (dx, dy))
                        assert r.delivered and r.is_minimal, (r.source, r.dest)


class TestTurnRules:
    def test_west_first_never_turns_west(self):
        view = clean_view(8)
        router = WestFirstRouter(view)
        r = router.route((5, 5), (1, 1))
        # All west hops must be a prefix of the path.
        west_hops = [
            i for i, (a, b) in enumerate(zip(r.path, r.path[1:])) if b[0] < a[0]
        ]
        assert west_hops == list(range(len(west_hops)))

    def test_negative_first_never_turns_negative_late(self):
        view = clean_view(8)
        router = NegativeFirstRouter(view)
        r = router.route((5, 1), (1, 6))  # needs west then north
        seen_positive = False
        for a, b in zip(r.path, r.path[1:]):
            dx, dy = b[0] - a[0], b[1] - a[1]
            if dx > 0 or dy > 0:
                seen_positive = True
            if seen_positive:
                assert dx >= 0 and dy >= 0


class TestDeadlockFreedom:
    @pytest.mark.parametrize("router_cls", ROUTERS)
    def test_cdg_acyclic_on_clean_mesh(self, router_cls):
        # The turn model's whole point: deadlock-free on one virtual
        # channel, verified exhaustively on a 4x4 mesh.
        assert is_deadlock_free(router_cls(clean_view(4)))

    @pytest.mark.parametrize("router_cls", ROUTERS)
    def test_cdg_acyclic_with_faults(self, router_cls):
        view = faulty_view([(2, 2)], shape=(5, 5))
        assert is_deadlock_free(router_cls(view))


class TestFaultTolerance:
    def test_adaptive_phase_dodges_faults(self):
        # A fault on the XY path: west-first's adaptive east/north/south
        # phase routes around it (destination east of source).
        view = faulty_view([(5, 5)])
        r = WestFirstRouter(view).route((0, 5), (9, 5))
        assert r.delivered
        assert (5, 5) not in r.path

    def test_west_phase_cannot_dodge(self):
        # While travelling west no other direction is legal, so a fault
        # on the westward row blocks the packet — the turn model's known
        # weakness that motivates the block-aware routers.
        view = faulty_view([(5, 5)])
        r = WestFirstRouter(view).route((9, 5), (0, 5))
        assert not r.delivered

    @pytest.mark.parametrize("router_cls", ROUTERS)
    @pytest.mark.parametrize("seed", range(3))
    def test_paths_stay_on_enabled_nodes(self, router_cls, seed):
        rng = np.random.default_rng(seed)
        m = Mesh2D(12, 12)
        faults = uniform_random(m.shape, 12, rng)
        res = label_mesh(m, faults)
        view = FaultModelView.from_regions(res)
        router = router_cls(view)
        pair_rng = np.random.default_rng(seed + 10)
        for _ in range(25):
            s, d = view.random_enabled_pair(pair_rng)
            r = router.route(s, d)
            for a, b in zip(r.path, r.path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
                assert view.is_enabled(b)
