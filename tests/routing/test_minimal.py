"""Unit tests for minimal-path feasibility and routing."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.faults import FaultSet, uniform_random
from repro.mesh import Mesh2D
from repro.routing import (
    BFSRouter,
    FaultModelView,
    MinimalRouter,
    minimal_feasible,
)


def view_for(coords, shape=(10, 10)):
    m = Mesh2D(*shape)
    res = label_mesh(m, FaultSet.from_coords(shape, coords))
    return FaultModelView.from_regions(res)


class TestMinimalFeasible:
    def test_fault_free_always_feasible(self):
        v = view_for([])
        assert minimal_feasible(v, (0, 0), (9, 9))
        assert minimal_feasible(v, (9, 9), (0, 0))
        assert minimal_feasible(v, (0, 9), (9, 0))

    def test_same_node(self):
        v = view_for([])
        assert minimal_feasible(v, (4, 4), (4, 4))

    def test_disabled_endpoint_infeasible(self):
        v = view_for([(3, 3)])
        assert not minimal_feasible(v, (3, 3), (5, 5))

    def test_straight_line_blocked(self):
        # Same row with a fault between: no minimal path (must leave the
        # rectangle, which is degenerate here).
        v = view_for([(5, 0)])
        assert not minimal_feasible(v, (0, 0), (9, 0))

    def test_full_diagonal_wall_blocks(self):
        # An anti-diagonal barrier across the monotone rectangle kills
        # every staircase path.
        coords = [(i, 4 - i) for i in range(5)]
        v = view_for(coords)
        assert not minimal_feasible(v, (0, 0), (4, 4))

    def test_partial_wall_leaves_a_gap(self):
        coords = [(i, 4 - i) for i in range(4)]  # gap at (4, 0)
        v = view_for(coords)
        assert minimal_feasible(v, (0, 0), (4, 4))

    @pytest.mark.parametrize("orient", range(4))
    def test_orientation_symmetry(self, orient):
        # Feasibility must be invariant to the four source/dest corner
        # orientations of the same obstacle picture.
        coords = [(4, 4), (5, 5), (4, 5)]
        v = view_for(coords)
        corners = [(1, 1), (8, 8), (1, 8), (8, 1)]
        s = corners[orient]
        d = corners[(orient + 1) % 4]
        # Compare against a BFS restricted check: feasible implies a
        # delivered BFS route of exactly Manhattan length.
        oracle = BFSRouter(v).route(s, d)
        expected = oracle.delivered and oracle.is_minimal
        assert minimal_feasible(v, s, d) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_bfs_minimality_on_random(self, seed):
        rng = np.random.default_rng(seed)
        m = Mesh2D(12, 12)
        faults = uniform_random(m.shape, 16, rng)
        res = label_mesh(m, faults)
        v = FaultModelView.from_regions(res)
        oracle = BFSRouter(v)
        pair_rng = np.random.default_rng(seed + 500)
        for _ in range(30):
            s, d = v.random_enabled_pair(pair_rng)
            bfs = oracle.route(s, d)
            expected = bfs.delivered and bfs.is_minimal
            assert minimal_feasible(v, s, d) == expected, (s, d)


class TestMinimalRouter:
    def test_routes_minimally_when_feasible(self):
        v = view_for([(4, 4)])
        r = MinimalRouter(v).route((0, 0), (9, 9))
        assert r.delivered and r.is_minimal
        assert (4, 4) not in r.path

    def test_drops_when_infeasible(self):
        v = view_for([(5, 0)])
        r = MinimalRouter(v).route((0, 0), (9, 0))
        assert not r.delivered

    def test_never_misroutes(self):
        # Every hop decreases the distance to the destination.
        rng = np.random.default_rng(10)
        v = view_for([(3, 3), (4, 4), (6, 2)])
        router = MinimalRouter(v)
        for _ in range(20):
            s, d = v.random_enabled_pair(rng)
            r = router.route(s, d)
            if r.delivered:
                dist = [abs(c[0] - d[0]) + abs(c[1] - d[1]) for c in r.path]
                assert all(a > b for a, b in zip(dist, dist[1:]))
