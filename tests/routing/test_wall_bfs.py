"""Unit tests for the wall-following router and the BFS oracle."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.faults import FaultSet, clustered, uniform_random
from repro.mesh import Mesh2D
from repro.routing import (
    BFSRouter,
    DropReason,
    FaultModelView,
    WallRouter,
)


def view_for(coords, shape=(10, 10), model="regions"):
    m = Mesh2D(*shape)
    res = label_mesh(m, FaultSet.from_coords(shape, coords))
    if model == "regions":
        return FaultModelView.from_regions(res)
    return FaultModelView.from_blocks(res)


class TestBFSOracle:
    def test_minimal_in_fault_free_mesh(self):
        v = view_for([])
        r = BFSRouter(v).route((0, 0), (9, 9))
        assert r.delivered and r.is_minimal

    def test_shortest_detour_around_block(self):
        # A single fault on the straight line costs exactly 2 extra hops;
        # a 3-tall wall centred on the line costs 4 (climb 2, descend 2).
        v1 = view_for([(5, 5)])
        r1 = BFSRouter(v1).route((0, 5), (9, 5))
        assert r1.delivered and r1.detour == 2
        v3 = view_for([(5, 4), (5, 5), (5, 6)])
        r3 = BFSRouter(v3).route((0, 5), (9, 5))
        assert r3.delivered and r3.detour == 4

    def test_unreachable_destination(self):
        # Fully enclose the destination corner.
        coords = [(8, 9), (8, 8), (9, 8)]
        v = view_for(coords)
        r = BFSRouter(v).route((0, 0), (9, 9))
        assert not r.delivered
        assert r.reason is DropReason.UNREACHABLE

    def test_path_cells_are_enabled_and_adjacent(self):
        rng = np.random.default_rng(8)
        v = view_for([(3, 3), (4, 4), (5, 3), (2, 6)])
        r = BFSRouter(v).route((0, 0), (9, 9))
        assert r.delivered
        for a, b in zip(r.path, r.path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
            assert v.is_enabled(b)


class TestWallRouter:
    @pytest.mark.parametrize("hand", ["right", "left"])
    def test_fault_free_is_minimal(self, hand):
        v = view_for([])
        r = WallRouter(v, hand=hand).route((1, 1), (8, 7))
        assert r.delivered and r.is_minimal

    @pytest.mark.parametrize("hand", ["right", "left"])
    def test_detours_around_wall(self, hand):
        coords = [(5, 3), (5, 4), (5, 5), (5, 6)]
        v = view_for(coords)
        r = WallRouter(v, hand=hand).route((0, 5), (9, 5))
        assert r.delivered
        assert all(not (c in coords) for c in r.path)

    def test_invalid_hand_rejected(self):
        with pytest.raises(ValueError):
            WallRouter(view_for([]), hand="both")

    def test_sealed_destination_reports_blocked(self):
        coords = [(8, 9), (8, 8), (9, 8)]
        v = view_for(coords)
        r = WallRouter(v).route((0, 0), (9, 9))
        assert not r.delivered
        assert r.reason in (DropReason.BLOCKED, DropReason.BUDGET)

    @pytest.mark.parametrize("seed", range(6))
    def test_delivery_matches_oracle_on_random_patterns(self, seed):
        # Whenever BFS can reach the destination, wall-following should
        # too on these moderate densities (the paper's convex regions
        # are exactly what makes boundary detours well-behaved).
        rng = np.random.default_rng(seed)
        m = Mesh2D(16, 16)
        faults = clustered(m.shape, 20, rng, clusters=2, spread=1.5)
        res = label_mesh(m, faults)
        v = FaultModelView.from_regions(res)
        wall = WallRouter(v)
        oracle = BFSRouter(v)
        pairs_rng = np.random.default_rng(seed + 1000)
        for _ in range(40):
            s, d = v.random_enabled_pair(pairs_rng)
            if oracle.route(s, d).delivered:
                got = wall.route(s, d)
                assert got.delivered, (s, d, got.reason)

    def test_path_stays_on_enabled_nodes(self):
        rng = np.random.default_rng(4)
        v = view_for([(4, 4), (5, 5), (4, 6), (6, 4)])
        r = WallRouter(v).route((0, 5), (9, 5))
        assert r.delivered
        assert all(v.is_enabled(c) for c in r.path)
