"""Unit tests for routing metrics — including the paper's payoff claim."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.faults import clustered
from repro.mesh import Mesh2D
from repro.routing import (
    BFSRouter,
    FaultModelView,
    RoutingMetrics,
    XYRouter,
    evaluate_router,
    sample_pairs,
)


class TestRoutingMetrics:
    def test_rates(self):
        m = RoutingMetrics(
            router="t",
            num_pairs=10,
            delivered=8,
            reachable=9,
            total_hops=40,
            total_detour=4,
            minimal=6,
            num_enabled=50,
        )
        assert m.delivery_rate == 0.8
        assert m.reachability == 0.9
        assert m.mean_hops == 5.0
        assert m.mean_detour == 0.5
        assert m.minimal_fraction == 0.75

    def test_empty_sample(self):
        m = RoutingMetrics("t", 0, 0, 0, 0, 0, 0, 0)
        assert m.delivery_rate == 1.0
        assert np.isnan(m.mean_hops)


class TestEvaluate:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        mesh = Mesh2D(20, 20)
        faults = clustered(mesh.shape, 24, rng, clusters=2, spread=1.5)
        return label_mesh(mesh, faults), rng

    def test_oracle_metrics_consistent(self):
        res, rng = self._setup()
        v = FaultModelView.from_regions(res)
        pairs = sample_pairs(v, 50, rng)
        m = evaluate_router(BFSRouter(v), pairs)
        # The oracle delivers exactly the reachable pairs.
        assert m.delivered == m.reachable
        assert m.num_pairs == 50

    def test_xy_no_worse_than_oracle(self):
        res, rng = self._setup(1)
        v = FaultModelView.from_regions(res)
        pairs = sample_pairs(v, 50, rng)
        xy = evaluate_router(XYRouter(v), pairs)
        oracle = evaluate_router(BFSRouter(v), pairs)
        assert xy.delivered <= oracle.delivered

    def test_refined_model_never_hurts(self):
        # The paper's payoff: the disabled-region view enables a superset
        # of nodes, so oracle reachability and delivery can only improve.
        for seed in range(4):
            res, rng = self._setup(seed + 10)
            vb = FaultModelView.from_blocks(res)
            vr = FaultModelView.from_regions(res)
            assert vr.num_enabled >= vb.num_enabled
            pairs = sample_pairs(vb, 60, rng)  # endpoints valid in both
            mb = evaluate_router(BFSRouter(vb), pairs)
            mr = evaluate_router(BFSRouter(vr), pairs)
            assert mr.delivered >= mb.delivered
            assert mr.total_hops <= mb.total_hops or mr.delivered > mb.delivered

    def test_disabled_endpoint_counts_as_failure(self):
        res, rng = self._setup(2)
        vb = FaultModelView.from_blocks(res)
        vr = FaultModelView.from_regions(res)
        # Find a node enabled under regions but not blocks.
        diff = vr.enabled & ~vb.enabled
        assert diff.any()
        xs, ys = np.nonzero(diff)
        activated = (int(xs[0]), int(ys[0]))
        safe_pair = sample_pairs(vb, 1, rng)[0]
        pairs = [(activated, safe_pair[1])]
        mb = evaluate_router(BFSRouter(vb), pairs)
        mr = evaluate_router(BFSRouter(vr), pairs)
        assert mb.delivered == 0
        assert mr.delivered == 1
