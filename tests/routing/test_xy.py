"""Unit tests for the XY dimension-order router."""

import numpy as np

from repro.core import label_mesh
from repro.faults import FaultSet
from repro.mesh import Mesh2D
from repro.routing import DropReason, FaultModelView, XYRouter


def fault_free_view(w=8, h=8):
    m = Mesh2D(w, h)
    return FaultModelView(m, np.ones((w, h), dtype=bool))


class TestFaultFree:
    def test_delivers_minimal_everywhere(self):
        v = fault_free_view(5, 5)
        router = XYRouter(v)
        for s in [(0, 0), (4, 4), (2, 1)]:
            for d in [(3, 3), (0, 4), (4, 0)]:
                r = router.route(s, d)
                assert r.delivered and r.is_minimal

    def test_path_is_x_then_y(self):
        router = XYRouter(fault_free_view())
        r = router.route((0, 0), (2, 2))
        assert r.path == ((0, 0), (1, 0), (2, 0), (2, 1), (2, 2))

    def test_self_route(self):
        router = XYRouter(fault_free_view())
        r = router.route((3, 3), (3, 3))
        assert r.delivered and r.hops == 0


class TestWithFaults:
    def _blocked_view(self):
        m = Mesh2D(8, 8)
        res = label_mesh(m, FaultSet.from_coords((8, 8), [(3, 0), (3, 1), (4, 0), (4, 1)]))
        return FaultModelView.from_regions(res)

    def test_drops_at_block(self):
        v = self._blocked_view()
        router = XYRouter(v)
        r = router.route((0, 0), (7, 0))
        assert not r.delivered
        assert r.reason is DropReason.BLOCKED
        assert r.path[-1] == (2, 0)  # stopped right before the region

    def test_unaffected_routes_still_deliver(self):
        v = self._blocked_view()
        router = XYRouter(v)
        assert router.route((0, 7), (7, 7)).delivered

    def test_bad_endpoints(self):
        v = self._blocked_view()
        router = XYRouter(v)
        assert router.route((3, 0), (7, 7)).reason is DropReason.BAD_ENDPOINT
        assert router.route((0, 0), (3, 0)).reason is DropReason.BAD_ENDPOINT
