"""Unit tests for ASCII and SVG rendering."""

from repro.core import label_mesh
from repro.faults import FaultSet
from repro.geometry import CellSet, shapes
from repro.mesh import Mesh2D
from repro.viz import render_cells, render_result, svg_of_cells, svg_of_result


def paper_result():
    return label_mesh(
        Mesh2D(6, 6), FaultSet.from_coords((6, 6), [(1, 3), (2, 1), (3, 2)])
    )


class TestAsciiResult:
    def test_glyph_counts_match_labels(self):
        r = paper_result()
        art = render_result(r, axes=False)
        assert art.count("#") == 3       # faults
        assert art.count("+") == 6       # activated
        assert art.count("x") == 0       # nothing left disabled here
        assert art.count(".") == 27      # safe

    def test_origin_is_southwest(self):
        r = paper_result()
        lines = render_result(r, axes=False).splitlines()
        # Fault (2, 1) must appear in the second line from the bottom,
        # third column.
        assert lines[-2][2] == "#"

    def test_axes_ruler(self):
        r = paper_result()
        art = render_result(r)
        assert art.splitlines()[-1].strip() == "012345"

    def test_glyph_override(self):
        from repro.core import NodeStatus

        r = paper_result()
        art = render_result(r, glyphs={NodeStatus.FAULTY: "F"}, axes=False)
        assert art.count("F") == 3 and art.count("#") == 0


class TestAsciiCells:
    def test_render_cells_with_highlight(self):
        cells = shapes.rectangle((6, 6), (1, 1), 3, 2)
        hl = CellSet.from_coords((6, 6), [(2, 2)])
        art = render_cells(cells, highlight=hl, axes=False)
        assert art.count("@") == 1
        assert art.count("#") == 5


class TestSvg:
    def test_result_svg_well_formed(self):
        svg = svg_of_result(paper_result(), scale=10)
        assert svg.startswith("<?xml")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") == 36 + 0  # one per cell
        assert "<polygon" in svg  # block/region outlines

    def test_result_svg_outline_toggles(self):
        plain = svg_of_result(
            paper_result(), outline_blocks=False, outline_regions=False
        )
        assert "<polygon" not in plain

    def test_cells_svg_layers(self):
        a = shapes.rectangle((8, 8), (1, 1), 2, 2)
        b = shapes.rectangle((8, 8), (5, 5), 2, 2)
        svg = svg_of_cells([(a, "#ff0000"), (b, "#00ff00")], (8, 8))
        assert svg.count("#ff0000") == 4
        assert svg.count("#00ff00") == 4

    def test_svg_dimensions_scale(self):
        svg = svg_of_cells([], (4, 3), scale=10)
        assert 'width="40"' in svg and 'height="30"' in svg


class TestSvgRoute:
    def _route_setup(self):
        from repro.routing import FaultModelView, WallRouter

        result = paper_result()
        view = FaultModelView.from_regions(result)
        route = WallRouter(view).route((0, 0), (5, 5))
        return result, route

    def test_route_overlay_present(self):
        from repro.viz import svg_of_route

        result, route = self._route_setup()
        svg = svg_of_route(result, route.path)
        assert "<polyline" in svg and svg.count("<circle") == 2
        assert svg.rstrip().endswith("</svg>")

    def test_single_node_path(self):
        from repro.viz import svg_of_route

        result, _ = self._route_setup()
        svg = svg_of_route(result, [(2, 2)])
        assert "<polyline" not in svg and svg.count("<circle") == 2

    def test_empty_path_is_base_document(self):
        from repro.viz import svg_of_result, svg_of_route

        result, _ = self._route_setup()
        assert svg_of_route(result, []) == svg_of_result(result)
