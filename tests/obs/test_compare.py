"""Unit tests for the cross-run regression report (``obs compare``)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import compare_runs, flatten_numeric, format_compare, load_run_artifact
from repro.obs.compare import metric_direction


class TestFlattenNumeric:
    def test_nested_objects_become_dotted_paths(self):
        flat = flatten_numeric(
            {"a": {"b": 1, "c": {"d": 2.5}}, "top": 3}
        )
        assert flat == {"a.b": 1.0, "a.c.d": 2.5, "top": 3.0}

    def test_lists_use_index_components(self):
        assert flatten_numeric({"xs": [10, 20]}) == {"xs.0": 10.0, "xs.1": 20.0}

    def test_bools_strings_and_nonfinite_skipped(self):
        flat = flatten_numeric(
            {"ok": True, "name": "x", "nan": float("nan"),
             "inf": float("inf"), "v": 1}
        )
        assert flat == {"v": 1.0}


class TestMetricDirection:
    @pytest.mark.parametrize(
        "path, direction",
        [
            ("incremental.durable.updates_per_sec", "higher"),
            ("sweep.speedup", "higher"),
            ("slo.availability", "higher"),
            ("slo.error_budget_remaining", "higher"),
            ("service_latency.update.p99", "lower"),
            ("service_latency.update.errors", "lower"),
            ("phase_seconds.label_total_s", "lower"),
            ("request.latency_us", "lower"),
            ("wal.bytes_per_update_bytes", "lower"),
            ("admin.overhead", None),  # bare name, no suffix match
            ("faults", None),
            ("version", None),
        ],
    )
    def test_inference(self, path, direction):
        assert metric_direction(path) == direction


class TestCompareRuns:
    def test_regression_flagged_beyond_threshold(self):
        a = {"latency": {"p99": 100.0}, "updates_per_sec": 50.0}
        b = {"latency": {"p99": 130.0}, "updates_per_sec": 49.0}
        deltas = {d.path: d for d in compare_runs(a, b, threshold=0.10)}
        assert deltas["latency.p99"].regressed is True
        assert deltas["latency.p99"].improved is False
        # -2% throughput is inside the threshold: not flagged.
        assert deltas["updates_per_sec"].regressed is False

    def test_improvement_flagged(self):
        a = {"p99": 100.0}
        b = {"p99": 50.0}
        (delta,) = compare_runs(a, b)
        assert delta.improved is True and delta.regressed is False

    def test_higher_better_regresses_downward(self):
        a = {"updates_per_sec": 100.0}
        b = {"updates_per_sec": 80.0}
        (delta,) = compare_runs(a, b)
        assert delta.direction == "higher"
        assert delta.regressed is True

    def test_only_shared_paths_compared(self):
        deltas = compare_runs({"a": 1, "b": 2}, {"b": 3, "c": 4})
        assert [d.path for d in deltas] == ["b"]

    def test_zero_baseline_has_no_relative(self):
        (delta,) = compare_runs({"errors": 0}, {"errors": 5})
        assert delta.relative is None
        assert delta.regressed is False  # cannot judge without a ratio

    def test_informational_metrics_never_flagged(self):
        (delta,) = compare_runs({"faults": 10}, {"faults": 100})
        assert delta.direction is None
        assert not delta.regressed and not delta.improved

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_runs({}, {}, threshold=-0.1)


class TestLoadRunArtifact:
    def test_loads_json_object(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"p99": 5}))
        assert load_run_artifact(str(path)) == {"p99": 5}

    def test_missing_file_raises_observability_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot load"):
            load_run_artifact(str(tmp_path / "nope.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(ObservabilityError, match="cannot load"):
            load_run_artifact(str(path))

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ObservabilityError, match="JSON object"):
            load_run_artifact(str(path))


class TestFormatCompare:
    def test_report_shape(self):
        deltas = compare_runs({"p99": 100.0, "faults": 1}, {"p99": 150.0, "faults": 1})
        report = format_compare(deltas, label_a="old.json", label_b="new.json")
        assert "old.json -> new.json" in report
        assert "1 regressed" in report
        assert "REGRESSED" in report
        assert "p99" in report
        # Informational metrics hidden by default...
        assert "faults" not in report
        # ...but shown with show_all.
        assert "faults" in format_compare(deltas, show_all=True)

    def test_empty_comparison(self):
        report = format_compare([])
        assert "no shared numeric metrics" in report
