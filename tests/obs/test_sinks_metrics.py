"""Unit tests for event sinks and the metrics registry."""

import json

import pytest

from repro.obs import (
    Event,
    JSONLSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    snapshot_event,
)


def _ev(name="heartbeat", **fields):
    fields.setdefault("seq", 1)
    fields.setdefault("clock", 2)
    return Event(name=name, t=0.0, level="info", fields=fields)


class TestMemorySink:
    def test_keeps_order(self):
        sink = MemorySink()
        sink.emit(_ev(seq=1))
        sink.emit(_ev(seq=2))
        assert [e.fields["seq"] for e in sink.events()] == [1, 2]

    def test_ring_buffer_drops_oldest(self):
        sink = MemorySink(capacity=2)
        for i in range(5):
            sink.emit(_ev(seq=i))
        assert [e.fields["seq"] for e in sink.events()] == [3, 4]
        assert len(sink) == 2

    def test_name_filter(self):
        sink = MemorySink()
        sink.emit(_ev())
        sink.emit(
            Event(name="round_start", t=0.0, level="info",
                  fields={"round": 1, "clock": 1, "delivered": 0})
        )
        assert len(sink.events("round_start")) == 1
        assert len(sink.events("heartbeat")) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)


class TestJSONLSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JSONLSink(str(path)) as sink:
            sink.emit(_ev(seq=1))
            sink.emit(_ev(seq=2))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["fields"]["seq"] == 1
        assert sink.written == 2

    def test_skips_snapshot_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JSONLSink(str(path)) as sink:
            sink.emit(snapshot_event(0, {(0, 0): True}))
            sink.emit(_ev())
        assert sink.written == 1
        assert len(path.read_text().splitlines()) == 1

    def test_emit_after_close_raises(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit(_ev())

    def test_null_sink_discards(self):
        NullSink().emit(_ev())  # nothing observable, must not raise


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("messages")
        c.inc()
        c.inc(5)
        assert reg.counter("messages").value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_up_and_down(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value == 4

    def test_histogram_aggregates(self):
        h = MetricsRegistry().histogram("sizes")
        for v in (4, 1, 7):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 12, 1, 7)

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("rounds", engine="sync").inc(3)
        reg.counter("rounds", engine="async").inc(4)
        snap = reg.snapshot()
        assert snap["counters"]['rounds{engine="sync"}'] == 3
        assert snap["counters"]['rounds{engine="async"}'] == 4

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("m", a="1", b="2")
        b = reg.counter("m", b="2", a="1")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="Counter"):
            reg.gauge("m")

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(3)
        payload = json.dumps(reg.snapshot())
        assert '"c{k=\\"v\\"}"' in payload

    def test_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        path = tmp_path / "metrics.json"
        reg.write(str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 2

    def test_integer_series_stay_integers(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(2)
        assert isinstance(reg.snapshot()["counters"]["c"], int)


class TestJSONLSinkFlushPolicy:
    def test_flush_every_makes_lines_visible_while_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path), flush_every=2)
        try:
            sink.emit(_ev(seq=1))
            sink.emit(_ev(seq=2))  # hits the flush boundary
            lines = path.read_text().splitlines()
            assert len(lines) == 2  # readable before close
        finally:
            sink.close()

    def test_default_policy_defers_to_close(self, tmp_path):
        # No flush_every: nothing is promised before close, everything
        # after.
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path))
        for i in range(3):
            sink.emit(_ev(seq=i))
        sink.close()
        assert len(path.read_text().splitlines()) == 3

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JSONLSink(str(tmp_path / "t.jsonl"), flush_every=0)

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "t.jsonl"))
        sink.emit(_ev())
        sink.close()
        sink.close()  # second close: no-op, no raise

    def test_flush_after_close_is_a_noop(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.flush()  # must not raise on a closed sink

    def test_concurrent_close_from_two_threads(self, tmp_path):
        import threading

        sink = JSONLSink(str(tmp_path / "t.jsonl"))
        sink.emit(_ev())
        threads = [threading.Thread(target=sink.close) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)

    def test_path_property(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JSONLSink(path) as sink:
            assert sink.path == path


class TestRegistrySeries:
    def test_series_iterates_every_kind_sorted(self):
        from repro.obs.metrics import Counter, Gauge

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", k="v").inc(2)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(5)
        rows = list(reg.series())
        names = [name for name, _, _ in rows]
        assert names == sorted(names)
        kinds = {name: type(series) for name, _, series in rows}
        assert kinds["a"] is Counter and kinds["g"] is Gauge
        labeled = next(labels for name, labels, _ in rows if name == "a")
        assert labeled == (("k", "v"),)
