"""Unit tests for the event records, schemas, and validators."""

import json

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    EVENT_SCHEMAS,
    Event,
    snapshot_event,
    validate_event,
    validate_event_dict,
    validate_jsonl,
)
from repro.obs.events import default_level, jsonable


class TestEvent:
    def test_to_dict_shape(self):
        e = Event(name="heartbeat", t=12.5, level="info", fields={"seq": 1, "clock": 3})
        d = e.to_dict()
        assert d == {
            "name": "heartbeat",
            "t": 12.5,
            "level": "info",
            "fields": {"seq": 1, "clock": 3},
        }

    def test_to_dict_coerces_fields(self):
        e = Event(
            name="crash_batch",
            t=0.0,
            level="info",
            fields={"time": np.int64(4), "nodes": [(1, 2), (3, 4)]},
        )
        d = e.to_dict()
        assert d["fields"] == {"time": 4, "nodes": [[1, 2], [3, 4]]}
        json.dumps(d)  # must be serializable as-is

    def test_default_levels(self):
        assert default_level("node_flip") == "debug"
        assert default_level("message_dropped") == "debug"
        assert default_level("round_start") == "info"
        assert default_level("run_end") == "info"


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(3) == 3
        assert jsonable("x") == "x"
        assert jsonable(None) is None
        assert jsonable(True) is True

    def test_containers(self):
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable(frozenset({(1, 0), (0, 1)})) == [[0, 1], [1, 0]]
        assert jsonable({"k": (1, 2)}) == {"k": [1, 2]}

    def test_numpy_scalars(self):
        out = jsonable(np.float64(1.5))
        assert out == 1.5 and isinstance(out, float)

    def test_fallback_is_str(self):
        class Weird:
            def __repr__(self):
                return "weird"

        assert jsonable(Weird()) == "weird"


class TestValidation:
    def test_every_schema_name_validates(self):
        for name, required in EVENT_SCHEMAS.items():
            fields = {k: 0 for k in required}
            validate_event(Event(name=name, t=0.0, level="info", fields=fields))

    def test_unknown_name_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown event name"):
            validate_event(Event(name="nope", t=0.0, level="info", fields={}))

    def test_missing_field_rejected(self):
        with pytest.raises(ObservabilityError, match="missing required fields"):
            validate_event(
                Event(name="heartbeat", t=0.0, level="info", fields={"seq": 1})
            )

    def test_extra_fields_allowed(self):
        validate_event(
            Event(
                name="heartbeat",
                t=0.0,
                level="info",
                fields={"seq": 1, "clock": 2, "engine": "sync"},
            )
        )

    def test_bad_level_rejected(self):
        with pytest.raises(ObservabilityError, match="invalid event level"):
            validate_event(
                Event(name="heartbeat", t=0.0, level="loud", fields={"seq": 1, "clock": 2})
            )

    def test_dict_missing_top_key(self):
        with pytest.raises(ObservabilityError, match="missing 'level'"):
            validate_event_dict({"name": "heartbeat", "t": 0.0, "fields": {}})

    def test_dict_non_numeric_timestamp(self):
        with pytest.raises(ObservabilityError, match="non-numeric"):
            validate_event_dict(
                {
                    "name": "heartbeat",
                    "t": "yesterday",
                    "level": "info",
                    "fields": {"seq": 1, "clock": 2},
                }
            )


class TestValidateJsonl:
    def _write(self, tmp_path, lines):
        p = tmp_path / "trace.jsonl"
        p.write_text("\n".join(lines) + "\n")
        return str(p)

    def _record(self, **over):
        rec = {
            "name": "heartbeat",
            "t": 1.0,
            "level": "info",
            "fields": {"seq": 1, "clock": 2},
        }
        rec.update(over)
        return json.dumps(rec)

    def test_counts_events(self, tmp_path):
        path = self._write(tmp_path, [self._record(), "", self._record()])
        assert validate_jsonl(path) == 2

    def test_reports_line_number(self, tmp_path):
        path = self._write(
            tmp_path, [self._record(), self._record(name="bogus")]
        )
        with pytest.raises(ObservabilityError, match=":2:"):
            validate_jsonl(path)

    def test_rejects_non_json(self, tmp_path):
        path = self._write(tmp_path, [self._record(), "{not json"])
        with pytest.raises(ObservabilityError, match="not JSON"):
            validate_jsonl(path)


class TestSnapshotEvent:
    def test_carries_raw_mapping(self):
        snap = {(0, 0): "unsafe", (1, 0): "safe"}
        e = snapshot_event(3, snap)
        assert e.name == "snapshot"
        assert e.level == "debug"
        assert e.fields["key"] == 3
        assert e.fields["snapshot"] == snap
        assert e.fields["snapshot"] is not snap  # defensive copy
