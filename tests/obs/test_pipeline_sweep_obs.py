"""Telemetry integration at the pipeline, kernel, and sweep layers."""

import numpy as np
import pytest

from repro.analysis.sweep import sweep
from repro.core.frontier import unsafe_fixpoint_sparse
from repro.core.pipeline import label_mesh
from repro.faults import FaultSet
from repro.mesh import Mesh2D
from repro.obs import MemorySink, MetricsRegistry, SpanRecorder, Telemetry

FAULTS = [(2, 2), (2, 3), (3, 2), (3, 3)]


def _faults(topo):
    return FaultSet.from_coords(topo.shape, FAULTS)


class TestPipelineTelemetry:
    def test_phase_transitions_emitted(self):
        sink = MemorySink()
        topo = Mesh2D(10, 10)
        result = label_mesh(topo, _faults(topo), telemetry=Telemetry(sinks=(sink,)))
        events = sink.events("phase_transition")
        assert [(e.fields["phase"], e.fields["status"]) for e in events] == [
            ("unsafe", "start"),
            ("unsafe", "end"),
            ("enable", "start"),
            ("enable", "end"),
            ("extract_blocks", "start"),
            ("extract_blocks", "end"),
            ("extract_regions", "start"),
            ("extract_regions", "end"),
        ]
        ends = {e.fields["phase"]: e.fields for e in events
                if e.fields["status"] == "end"}
        assert ends["unsafe"]["rounds"] == result.rounds_phase1
        assert ends["enable"]["rounds"] == result.rounds_phase2
        assert ends["extract_blocks"]["count"] == len(result.blocks)
        assert ends["extract_regions"]["count"] == len(result.regions)

    def test_phase_spans_recorded(self):
        rec = SpanRecorder()
        topo = Mesh2D(10, 10)
        label_mesh(topo, _faults(topo), telemetry=Telemetry(spans=rec))
        names = [e["name"] for e in rec.to_chrome_trace()["traceEvents"]]
        assert "phase_unsafe" in names and "phase_enable" in names

    def test_distributed_backend_engine_spans_nest(self):
        rec = SpanRecorder()
        topo = Mesh2D(10, 10)
        label_mesh(
            topo,
            _faults(topo),
            backend="distributed",
            telemetry=Telemetry(spans=rec),
        )
        events = rec.to_chrome_trace()["traceEvents"]
        names = {e["name"] for e in events}
        assert {"phase_unsafe", "phase_enable", "engine_round"} <= names

    def test_results_identical_with_and_without_telemetry(self):
        topo = Mesh2D(10, 10)
        plain = label_mesh(topo, _faults(topo))
        traced = label_mesh(topo, _faults(topo), telemetry=Telemetry.null())
        assert np.array_equal(plain.labels.unsafe, traced.labels.unsafe)
        assert np.array_equal(plain.labels.enabled, traced.labels.enabled)
        assert plain.rounds_phase1 == traced.rounds_phase1
        assert plain.rounds_phase2 == traced.rounds_phase2


class TestFrontierTelemetry:
    def test_frontier_sizes_observed(self):
        reg = MetricsRegistry()
        topo = Mesh2D(10, 10)
        faulty = _faults(topo).mask
        _, rounds = unsafe_fixpoint_sparse(
            topo, faulty, telemetry=Telemetry(metrics=reg)
        )
        hist = reg.histogram("frontier_active_cells")
        # One observation per executed round, including the quiescent one.
        assert hist.count == rounds + 1
        assert hist.min is not None and hist.min >= 1

    def test_pipeline_routes_phase_labels_to_kernels(self):
        reg = MetricsRegistry()
        topo = Mesh2D(10, 10)
        label_mesh(
            topo,
            _faults(topo),
            method="frontier",
            telemetry=Telemetry(metrics=reg),
        )
        keys = set(reg.snapshot()["histograms"])
        assert 'frontier_active_cells{phase="unsafe"}' in keys
        assert 'frontier_active_cells{phase="enable"}' in keys


def _metric_ok(value, rng):
    return {"m": float(value) + float(rng.integers(0, 2))}


def _metric_fails_on_two(value, rng):
    if value == 2:
        raise RuntimeError("boom")
    return {"m": float(value)}


class TestSweepTelemetry:
    def test_cell_events_and_counters(self):
        sink = MemorySink()
        reg = MetricsRegistry()
        tel = Telemetry(sinks=(sink,), metrics=reg)
        sweep([1, 2], _metric_ok, trials=3, seed=0, telemetry=tel)
        cells = sink.events("sweep_cell")
        assert len(cells) == 6
        assert all(e.fields["ok"] for e in cells)
        assert [e.fields["value"] for e in cells] == [1, 1, 1, 2, 2, 2]
        assert [e.fields["trial"] for e in cells] == [0, 1, 2, 0, 1, 2]
        assert all("metrics" in e.fields for e in cells)
        snap = reg.snapshot()["counters"]
        assert snap["sweep_cells_total"] == 6
        assert snap["sweep_cell_failures_total"] == 0

    def test_failures_captured_with_context(self):
        sink = MemorySink()
        reg = MetricsRegistry()
        tel = Telemetry(sinks=(sink,), metrics=reg)
        points = sweep([1, 2], _metric_fails_on_two, trials=2, seed=0, telemetry=tel)
        failed = [e for e in sink.events("sweep_cell") if not e.fields["ok"]]
        assert len(failed) == 2
        assert all(e.fields["value"] == 2 for e in failed)
        assert all("RuntimeError: boom" in e.fields["error"] for e in failed)
        assert reg.snapshot()["counters"]["sweep_cell_failures_total"] == 2
        # Telemetry must not change the sweep result itself.
        assert points == sweep([1, 2], _metric_fails_on_two, trials=2, seed=0)

    def test_parallel_sweep_logs_in_serial_order(self):
        serial_sink, parallel_sink = MemorySink(), MemorySink()
        sweep([1, 2], _metric_ok, trials=2, seed=0,
              telemetry=Telemetry(sinks=(serial_sink,)))
        sweep([1, 2], _metric_ok, trials=2, seed=0, jobs=2,
              telemetry=Telemetry(sinks=(parallel_sink,)))
        strip = lambda events: [
            {k: v for k, v in e.fields.items()} for e in events
        ]
        assert strip(serial_sink.events("sweep_cell")) == strip(
            parallel_sink.events("sweep_cell")
        )

    def test_serial_sweep_spans_per_cell(self):
        rec = SpanRecorder()
        sweep([1], _metric_ok, trials=3, seed=0, telemetry=Telemetry(spans=rec))
        names = [e["name"] for e in rec.to_chrome_trace()["traceEvents"]]
        assert names.count("sweep_cell") == 3
