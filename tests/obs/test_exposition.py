"""Unit tests for Prometheus text exposition and the admin endpoint.

The round-trip test is the load-bearing one: a live ``/metrics`` scrape
must agree *exactly* with ``MetricsRegistry.snapshot()``, because the
registry is the same object the RunStats property tests pin bit-for-bit
and the CI scrape check compares against.
"""

import http.client
import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    AdminServer,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.exposition import CONTENT_TYPE


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("requests", op="ping", outcome="ok").inc(3)
    reg.counter("requests", op="update", outcome="error").inc()
    reg.counter("plain").inc(7)
    reg.gauge("inflight").set(2)
    h = reg.histogram("latency_us", op="update")
    for v in (10.0, 20.0, 90.0):
        h.observe(v)
    return reg


class TestRenderPrometheus:
    def test_round_trip_agrees_with_snapshot_exactly(self):
        reg = _populated_registry()
        parsed = parse_prometheus(render_prometheus(reg))
        snap = reg.snapshot()
        assert set(parsed["counters"]) == set(snap["counters"])
        for key, value in snap["counters"].items():
            assert parsed["counters"][key] == float(value)
        for key, value in snap["gauges"].items():
            assert parsed["gauges"][key] == float(value)
        assert set(parsed["summaries"]) == set(snap["histograms"])
        for key, hist in snap["histograms"].items():
            got = parsed["summaries"][key]
            assert got["count"] == float(hist["count"])
            assert got["sum"] == float(hist["sum"])
            assert got["min"] == float(hist["min"])
            assert got["max"] == float(hist["max"])

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {
            "counters": {}, "gauges": {}, "summaries": {},
        }

    def test_series_grouped_under_one_type_header(self):
        reg = _populated_registry()
        text = render_prometheus(reg)
        assert text.count("# TYPE requests counter") == 1
        assert text.count("# TYPE latency_us summary") == 1
        # Deterministic output: same registry renders identically.
        assert text == render_prometheus(reg)

    def test_integer_values_render_without_float_noise(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        assert "c 5\n" in render_prometheus(reg)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", k='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 'k="a\\"b\\\\c\\nd"' in text
        # And the escaped form still parses as one counter sample.
        parsed = parse_prometheus(text)
        assert list(parsed["counters"].values()) == [1.0]

    def test_empty_histogram_min_max_render_nan(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        text = render_prometheus(reg)
        assert "h_min NaN" in text and "h_max NaN" in text
        parsed = parse_prometheus(text)
        assert math.isnan(parsed["summaries"]["h"]["min"])
        assert parsed["summaries"]["h"]["count"] == 0.0


class TestParsePrometheus:
    def test_help_comments_are_ignored(self):
        text = "# HELP c helpful words\n# TYPE c counter\nc 1\n"
        assert parse_prometheus(text)["counters"]["c"] == 1.0

    @pytest.mark.parametrize(
        "text, match",
        [
            ("c 1\n", "no # TYPE"),
            ("# TYPE c counter\nc one\n", "bad sample value"),
            ("# TYPE c histogram\nc 1\n", "unknown metric type"),
            ("# TYPE c\nc 1\n", "malformed comment"),
            ('# TYPE c counter\nc{k="v" 1\n', "unbalanced label braces"),
            ("# TYPE c counter\nc\n", "expected 'name value'"),
            ('# TYPE c counter\nc{k="v"} 1 2\n', "one value after labels"),
        ],
    )
    def test_malformed_exposition_rejected_with_line(self, text, match):
        with pytest.raises(ObservabilityError, match=match):
            parse_prometheus(text)

    def test_error_names_the_line_number(self):
        with pytest.raises(ObservabilityError, match="line 2"):
            parse_prometheus("# TYPE c counter\nbogus 1\n")


def _get(address, path):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=5)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestAdminServer:
    def test_metrics_endpoint_matches_renderer(self):
        reg = _populated_registry()
        with AdminServer(metrics=reg) as admin:
            status, headers, body = _get(admin.address, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert body.decode("utf-8") == render_prometheus(reg)

    def test_scrape_does_not_mutate_the_registry(self):
        reg = _populated_registry()
        before = reg.snapshot()
        with AdminServer(metrics=reg) as admin:
            for _ in range(3):
                _get(admin.address, "/metrics")
        assert reg.snapshot() == before

    def test_metrics_without_registry_serves_empty(self):
        with AdminServer() as admin:
            status, _, body = _get(admin.address, "/metrics")
        assert status == 200 and body == b""

    def test_healthz_always_ok(self):
        with AdminServer() as admin:
            status, _, body = _get(admin.address, "/healthz")
        assert status == 200 and body == b"ok\n"

    def test_readyz_gates_on_probe(self):
        ready = {"value": False}
        with AdminServer(ready=lambda: ready["value"]) as admin:
            status, _, body = _get(admin.address, "/readyz")
            assert status == 503 and b"not ready" in body
            ready["value"] = True
            status, _, body = _get(admin.address, "/readyz")
            assert status == 200 and body == b"ready\n"

    def test_readyz_broken_probe_is_not_ready(self):
        def probe():
            raise RuntimeError("recovery still running")

        with AdminServer(ready=probe) as admin:
            status, _, body = _get(admin.address, "/readyz")
        assert status == 503
        assert b"recovery still running" in body

    def test_readyz_default_is_ready(self):
        with AdminServer() as admin:
            status, _, _ = _get(admin.address, "/readyz")
        assert status == 200

    def test_varz_serves_caller_document(self):
        calls = []

        def varz():
            calls.append(1)
            return {"faults": 3, "version": 7}

        with AdminServer(varz=varz) as admin:
            status, headers, body = _get(admin.address, "/varz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body) == {"faults": 3, "version": 7}
        assert calls  # evaluated per request, not captured at start

    def test_varz_without_callable_serves_empty_object(self):
        with AdminServer() as admin:
            _, _, body = _get(admin.address, "/varz")
        assert json.loads(body) == {}

    def test_unknown_path_is_404(self):
        with AdminServer() as admin:
            status, _, _ = _get(admin.address, "/nope")
        assert status == 404

    def test_broken_varz_yields_500_not_a_dead_server(self):
        def varz():
            raise RuntimeError("boom")

        with AdminServer(varz=varz) as admin:
            status, _, body = _get(admin.address, "/varz")
            assert status == 500 and b"boom" in body
            # The admin thread survived the exception.
            status, _, _ = _get(admin.address, "/healthz")
            assert status == 200

    def test_close_is_idempotent(self):
        admin = AdminServer()
        admin.start()
        admin.close()
        admin.close()  # second close must be a no-op

    def test_ephemeral_port_is_bound(self):
        with AdminServer() as admin:
            host, port = admin.address
        assert host == "127.0.0.1" and port > 0
