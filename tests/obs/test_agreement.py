"""Telemetry must agree bit-for-bit with the engines' own accounting.

Two pinning suites:

* the metrics snapshot of a traced run equals its ``RunStats`` fields
  exactly, across engines x channels x fault schedules;
* ``summarize_trace`` on the run's JSONL event log rebuilds the same
  per-epoch recovery report as ``RunStats.epochs``.
"""

import numpy as np
import pytest

from repro.core.distributed import (
    async_unsafe,
    distributed_enabled,
    distributed_unsafe,
)
from repro.fabric import ChannelModel
from repro.faults import FaultSchedule, FaultSet
from repro.mesh import Mesh2D
from repro.obs import JSONLSink, MemorySink, MetricsRegistry, Telemetry
from repro.obs.summarize import summarize_trace

FAULTS = [(1, 1), (1, 2), (2, 1), (2, 2), (5, 5)]
SCHEDULE = [(2, (6, 2)), (2, (6, 3)), (5, (3, 6))]


def _channel(kind):
    if kind == "reliable":
        return None
    return ChannelModel(
        drop_prob=0.25,
        dup_prob=0.1,
        rng=np.random.default_rng(77),
        max_drops=40,
    )


def _run(engine, channel_kind, dynamic, telemetry):
    topo = Mesh2D(8, 8)
    faults = FaultSet.from_coords(topo.shape, FAULTS)
    schedule = FaultSchedule(SCHEDULE) if dynamic else None
    channel = _channel(channel_kind)
    if engine == "sync":
        _, stats, _ = distributed_unsafe(
            topo, faults, schedule=schedule, channel=channel, telemetry=telemetry
        )
    else:
        _, stats = async_unsafe(
            topo,
            faults,
            np.random.default_rng(3),
            schedule=schedule,
            channel=channel,
            telemetry=telemetry,
        )
    return stats


@pytest.mark.parametrize("engine", ["sync", "async"])
@pytest.mark.parametrize("channel_kind", ["reliable", "lossy"])
@pytest.mark.parametrize("dynamic", [False, True])
class TestMetricsMatchRunStats:
    def test_snapshot_equals_stats(self, engine, channel_kind, dynamic):
        reg = MetricsRegistry()
        stats = _run(engine, channel_kind, dynamic, Telemetry(metrics=reg))

        def counter(name):
            return reg.counter(name, engine=engine).value

        assert counter("engine_rounds_total") == stats.rounds
        assert counter("engine_rounds_executed_total") == stats.executed_rounds
        assert counter("engine_messages_total") == stats.total_messages
        assert counter("engine_heartbeats_total") == stats.heartbeats
        assert counter("engine_recovery_rounds_total") == stats.recovery_rounds
        assert counter("channel_dropped_total") == stats.dropped_messages
        assert counter("channel_duplicated_total") == stats.duplicated_messages

        messages = reg.histogram("engine_messages_per_round", engine=engine)
        assert messages.count == stats.executed_rounds
        assert messages.total == stats.total_messages
        flips = reg.histogram("engine_flips_per_round", engine=engine)
        assert flips.total == sum(stats.changes_per_round)

    def test_telemetry_does_not_change_results(self, engine, channel_kind, dynamic):
        baseline = _run(engine, channel_kind, dynamic, None)
        traced = _run(
            engine, channel_kind, dynamic, Telemetry(metrics=MetricsRegistry())
        )
        assert baseline == traced


@pytest.mark.parametrize("engine", ["sync", "async"])
class TestSummarizeMatchesRunStats:
    def test_epoch_report_agrees(self, engine, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(str(path))
        tel = Telemetry(sinks=(sink,))
        stats = _run(engine, "lossy", True, tel)
        tel.close()

        report = summarize_trace(str(path)).run(engine=engine)
        assert report.rounds == stats.rounds
        assert report.messages == stats.total_messages
        assert report.heartbeats == stats.heartbeats
        assert report.dropped == stats.dropped_messages
        assert report.duplicated == stats.duplicated_messages
        assert report.recovery_rounds == stats.recovery_rounds
        assert len(report.epochs) == len(stats.epochs)
        for got, want in zip(report.epochs, stats.epochs):
            assert got.at_time == want.at_time
            assert got.crashed == tuple(want.crashed)
            assert got.rounds == want.rounds
            assert got.executed_rounds == want.executed_rounds
            assert got.messages == want.messages
            assert got.dropped == want.dropped
            assert got.duplicated == want.duplicated


class TestEventLog:
    def test_sync_round_events_cover_every_round(self):
        sink = MemorySink()
        topo = Mesh2D(8, 8)
        faults = FaultSet.from_coords(topo.shape, FAULTS)
        _, stats, _ = distributed_unsafe(
            topo, faults, telemetry=Telemetry(sinks=(sink,))
        )
        rounds = sink.events("round_start")
        assert len(rounds) == stats.executed_rounds
        assert [e.fields["delivered"] for e in rounds] == stats.messages_per_round
        assert all(e.fields["engine"] == "sync" for e in rounds)

    def test_node_flips_only_at_debug(self):
        topo = Mesh2D(8, 8)
        faults = FaultSet.from_coords(topo.shape, FAULTS)

        info_sink = MemorySink()
        distributed_unsafe(topo, faults, telemetry=Telemetry(sinks=(info_sink,)))
        assert not info_sink.events("node_flip")

        debug_sink = MemorySink()
        _, stats, _ = distributed_unsafe(
            topo,
            faults,
            telemetry=Telemetry(sinks=(debug_sink,), log_level="debug"),
        )
        assert len(debug_sink.events("node_flip")) == sum(stats.changes_per_round)

    def test_lossy_channel_emits_drop_events(self):
        sink = MemorySink()
        topo = Mesh2D(8, 8)
        faults = FaultSet.from_coords(topo.shape, FAULTS)
        _, stats, _ = distributed_unsafe(
            topo,
            faults,
            channel=_channel("lossy"),
            telemetry=Telemetry(sinks=(sink,), log_level="debug"),
        )
        assert len(sink.events("message_dropped")) == stats.dropped_messages
        assert len(sink.events("message_duplicated")) == stats.duplicated_messages

    def test_phase2_events_share_the_trace(self):
        sink = MemorySink()
        tel = Telemetry(sinks=(sink,))
        topo = Mesh2D(8, 8)
        faults = FaultSet.from_coords(topo.shape, FAULTS)
        unsafe, _, _ = distributed_unsafe(
            topo, faults, telemetry=tel.child(phase="unsafe")
        )
        distributed_enabled(
            topo, faults, unsafe, telemetry=tel.child(phase="enable")
        )
        phases = {e.fields.get("phase") for e in sink.events("run_start")}
        assert phases == {"unsafe", "enable"}
