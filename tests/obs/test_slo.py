"""Unit tests for rolling-window SLO evaluation."""

import threading

import pytest

from repro.obs import SLOConfig, SLOTracker, evaluate_outcomes


class TestSLOConfig:
    def test_defaults_are_valid(self):
        cfg = SLOConfig()
        assert cfg.window == 1024 and cfg.latency_quantile == 0.99

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_quantile": 0.0},
            {"latency_quantile": 1.5},
            {"availability_target": 0.0},
            {"availability_target": 1.1},
            {"window": 0},
            {"latency_objective_us": 0.0},
            {"latency_objective_us": -5.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


class TestEvaluateOutcomes:
    def test_empty_window_is_vacuously_ok(self):
        result = evaluate_outcomes([], SLOConfig())
        assert result["count"] == 0
        assert result["availability"] == 1.0
        assert result["latency_quantile_us"] == 0.0
        assert result["ok"] is True

    def test_all_ok_under_objective(self):
        cfg = SLOConfig(latency_objective_us=100.0)
        result = evaluate_outcomes([(True, 50.0)] * 10, cfg)
        assert result["errors"] == 0
        assert result["availability"] == 1.0
        assert result["latency_quantile_us"] == 50.0
        assert result["ok"] is True

    def test_latency_violation_flips_latency_ok_only(self):
        cfg = SLOConfig(latency_objective_us=100.0, latency_quantile=1.0)
        result = evaluate_outcomes([(True, 50.0), (True, 500.0)], cfg)
        assert result["availability_ok"] is True
        assert result["latency_quantile_us"] == 500.0
        assert result["latency_ok"] is False
        assert result["ok"] is False

    def test_error_budget_accounting(self):
        cfg = SLOConfig(availability_target=0.9)
        outcomes = [(True, 1.0)] * 8 + [(False, 0.0)] * 2
        result = evaluate_outcomes(outcomes, cfg)
        assert result["count"] == 10 and result["errors"] == 2
        assert result["availability"] == pytest.approx(0.8)
        assert result["error_budget_total"] == pytest.approx(1.0)
        assert result["error_budget_spent"] == 2.0
        assert result["error_budget_remaining"] == 0.0  # floored
        assert result["availability_ok"] is False

    def test_budget_within_allowance_stays_ok(self):
        cfg = SLOConfig(availability_target=0.5)
        result = evaluate_outcomes([(True, 1.0), (True, 1.0), (False, 0.0)], cfg)
        assert result["availability_ok"] is True
        assert result["error_budget_remaining"] > 0.0

    def test_quantile_covers_successes_only(self):
        # Rejected requests answer in ~0 µs; they must not flatter the
        # latency percentile.
        cfg = SLOConfig(
            latency_objective_us=100.0,
            latency_quantile=0.5,
            availability_target=0.1,
        )
        outcomes = [(False, 0.0)] * 50 + [(True, 80.0)]
        result = evaluate_outcomes(outcomes, cfg)
        assert result["latency_quantile_us"] == 80.0
        assert result["latency_ok"] is True

    def test_all_error_window_has_zero_quantile(self):
        result = evaluate_outcomes([(False, 0.0)] * 5, SLOConfig())
        assert result["latency_quantile_us"] == 0.0
        assert result["latency_ok"] is True  # nothing to measure
        assert result["availability"] == 0.0
        assert result["ok"] is False

    def test_nearest_rank_quantile(self):
        cfg = SLOConfig(latency_quantile=0.99)
        outcomes = [(True, float(i)) for i in range(1, 101)]
        result = evaluate_outcomes(outcomes, cfg)
        assert result["latency_quantile_us"] == 99.0

    def test_result_is_json_ready(self):
        import json

        result = evaluate_outcomes([(True, 1.0)], SLOConfig())
        assert json.loads(json.dumps(result)) == result


class TestSLOTracker:
    def test_window_evicts_oldest(self):
        tracker = SLOTracker(SLOConfig(window=4))
        for _ in range(6):
            tracker.record(False, 0.0)
        for _ in range(4):
            tracker.record(True, 10.0)
        assert len(tracker) == 4
        result = tracker.evaluate()
        # The errors rolled out of the window but stay in the lifetime
        # totals.
        assert result["errors"] == 0
        assert result["total"] == 10 and result["total_errors"] == 6

    def test_evaluate_matches_pure_core(self):
        cfg = SLOConfig(latency_objective_us=100.0)
        tracker = SLOTracker(cfg)
        outcomes = [(True, 10.0), (False, 0.0), (True, 30.0)]
        for ok, lat in outcomes:
            tracker.record(ok, lat)
        expected = evaluate_outcomes(outcomes, cfg)
        got = tracker.evaluate()
        assert {k: got[k] for k in expected} == expected

    def test_concurrent_records_are_not_lost(self):
        tracker = SLOTracker(SLOConfig(window=10_000))

        def worker():
            for _ in range(500):
                tracker.record(True, 1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        result = tracker.evaluate()
        assert result["count"] == 2000 and result["total"] == 2000
