"""Unit tests for the span recorder, the strict Chrome-trace loader,
and the telemetry facade."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MemorySink,
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    load_chrome_trace,
)


class TestSpanRecorder:
    def test_records_complete_events(self):
        rec = SpanRecorder()
        with rec.span("outer", phase=1):
            with rec.span("inner"):
                pass
        trace = rec.to_chrome_trace()
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for e in spans:
            assert e["dur"] >= 0
            assert e["ts"] >= 0

    def test_export_carries_process_name_and_origin(self):
        rec = SpanRecorder("server")
        with rec.span("a"):
            pass
        trace = rec.to_chrome_trace()
        meta = trace["traceEvents"][0]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        assert meta["args"] == {"name": "server"}
        assert isinstance(trace["originUnix"], float)

    def test_nesting_by_containment(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        by_name = {e["name"]: e for e in rec.to_chrome_trace()["traceEvents"]}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_span_closes_on_exception(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("failing"):
                raise RuntimeError("boom")
        assert len(rec) == 1

    def test_args_are_jsonable(self, tmp_path):
        rec = SpanRecorder()
        with rec.span("s", node=(1, 2)):
            pass
        path = tmp_path / "trace.json"
        rec.write(str(path))
        data = load_chrome_trace(str(path))
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["args"] == {"node": [1, 2]}

    def test_context_binds_args_onto_spans(self):
        rec = SpanRecorder()
        with rec.context(trace="t1", attempt=0):
            with rec.span("outer"):
                with rec.span("inner", attempt=7):
                    pass
        with rec.span("outside"):
            pass
        by_name = {
            e["name"]: e["args"]
            for e in rec.to_chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        }
        assert by_name["outer"] == {"trace": "t1", "attempt": 0}
        # Explicit span args win over bound ones.
        assert by_name["inner"] == {"trace": "t1", "attempt": 7}
        # Bindings end with the context.
        assert by_name["outside"] == {}

    def test_context_nesting_shadows_and_restores(self):
        rec = SpanRecorder()
        with rec.context(trace="t1"):
            with rec.context(trace="t2", extra=1):
                with rec.span("deep"):
                    pass
            with rec.span("shallow"):
                pass
        by_name = {
            e["name"]: e["args"]
            for e in rec.to_chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        }
        assert by_name["deep"] == {"trace": "t2", "extra": 1}
        assert by_name["shallow"] == {"trace": "t1"}


class TestChromeTraceLoader:
    def _load(self, tmp_path, payload):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(payload))
        return load_chrome_trace(str(path))

    def test_roundtrip(self, tmp_path):
        rec = SpanRecorder()
        with rec.span("a"):
            pass
        path = tmp_path / "trace.json"
        rec.write(str(path))
        events = load_chrome_trace(str(path))["traceEvents"]
        assert [e["ph"] for e in events] == ["M", "X"]

    def test_rejects_bare_array(self, tmp_path):
        with pytest.raises(ObservabilityError, match="traceEvents"):
            self._load(tmp_path, [])

    def test_rejects_missing_dur_on_complete(self, tmp_path):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(ObservabilityError, match="dur"):
            self._load(tmp_path, bad)

    def test_rejects_unknown_phase(self, tmp_path):
        bad = {"traceEvents": [{"name": "x", "ph": "Q", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(ObservabilityError, match="phase"):
            self._load(tmp_path, bad)

    def test_rejects_non_numeric_ts(self, tmp_path):
        bad = {
            "traceEvents": [
                {"name": "x", "ph": "i", "ts": "soon", "pid": 0, "tid": 0}
            ]
        }
        with pytest.raises(ObservabilityError, match="ts"):
            self._load(tmp_path, bad)

    def test_rejects_unparseable_file(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{")
        with pytest.raises(ObservabilityError, match="cannot load"):
            load_chrome_trace(str(path))


class TestTelemetry:
    def test_emit_reaches_all_sinks(self):
        a, b = MemorySink(), MemorySink()
        tel = Telemetry(sinks=(a, b))
        tel.emit("heartbeat", seq=1, clock=2)
        assert len(a) == 1 and len(b) == 1

    def test_level_filtering(self):
        sink = MemorySink()
        tel = Telemetry(sinks=(sink,), log_level="info")
        tel.emit("node_flip", node=(0, 0), clock=1)  # debug by default
        tel.emit("heartbeat", seq=1, clock=2)
        assert [e.name for e in sink.events()] == ["heartbeat"]
        assert tel.wants("info") and not tel.wants("debug")

    def test_debug_level_keeps_everything(self):
        sink = MemorySink()
        tel = Telemetry(sinks=(sink,), log_level="debug")
        tel.emit("node_flip", node=(0, 0), clock=1)
        assert len(sink) == 1

    def test_no_sinks_wants_nothing(self):
        tel = Telemetry(metrics=MetricsRegistry())
        assert not tel.wants("info")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(log_level="verbose")

    def test_child_labels_ride_on_events(self):
        sink = MemorySink()
        tel = Telemetry(sinks=(sink,)).child(engine="sync").child(phase="unsafe")
        tel.emit("heartbeat", seq=1, clock=2)
        fields = sink.events()[0].fields
        assert fields["engine"] == "sync" and fields["phase"] == "unsafe"

    def test_explicit_fields_beat_labels(self):
        sink = MemorySink()
        tel = Telemetry(sinks=(sink,)).child(seq=99)
        tel.emit("heartbeat", seq=1, clock=2)
        assert sink.events()[0].fields["seq"] == 1

    def test_child_labels_ride_on_metrics(self):
        reg = MetricsRegistry()
        tel = Telemetry(metrics=reg).child(engine="async")
        tel.counter("rounds").inc(2)
        assert reg.snapshot()["counters"]['rounds{engine="async"}'] == 2

    def test_metric_helpers_none_without_registry(self):
        tel = Telemetry(sinks=(MemorySink(),))
        assert tel.counter("x") is None
        assert tel.gauge("x") is None
        assert tel.histogram("x") is None

    def test_span_noop_without_recorder(self):
        tel = Telemetry(sinks=(MemorySink(),))
        with tel.span("anything"):
            pass  # must be a shared no-op context

    def test_span_records_with_recorder(self):
        rec = SpanRecorder()
        tel = Telemetry(spans=rec)
        with tel.span("work"):
            pass
        assert len(rec) == 1

    def test_null_exercises_emit_path(self):
        tel = Telemetry.null()
        assert tel.wants("debug")
        tel.emit("node_flip", node=(0, 0), clock=1)  # must not raise
