"""Property-based tests for the wormhole simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh2D
from repro.network import WormholeNetwork, WormPacket, xy_hops

N = 8
coords_st = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1))


class TestSingleWormInvariants:
    @given(coords_st, coords_st, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_lone_worm_always_delivers(self, src, dst, length):
        net = WormholeNetwork(Mesh2D(N, N), xy_hops(), buffer_depth=2)
        p = WormPacket(0, src, dst, length=length, inject_cycle=0)
        res = net.run([p])
        assert res.delivery_rate == 1.0 and not res.deadlocked

    @given(coords_st, coords_st, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_latency_lower_bound(self, src, dst, length):
        # A worm cannot beat physics: at least one cycle per hop for the
        # head plus one per remaining flit at the ejection port.
        net = WormholeNetwork(Mesh2D(N, N), xy_hops(), buffer_depth=4)
        p = WormPacket(0, src, dst, length=length, inject_cycle=0)
        net.run([p])
        hops = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        assert p.latency is not None
        if hops == 0:
            assert p.latency == 0  # local delivery bypasses the network
        else:
            assert p.latency >= hops + length - 1

    @given(
        st.lists(st.tuples(coords_st, coords_st), min_size=1, max_size=10),
        st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_xy_contention_never_deadlocks(self, pairs, length):
        packets = [
            WormPacket(i, s, d, length=length, inject_cycle=0)
            for i, (s, d) in enumerate(pairs)
        ]
        net = WormholeNetwork(Mesh2D(N, N), xy_hops(), buffer_depth=1)
        res = net.run(packets)
        assert not res.deadlocked
        assert res.delivery_rate == 1.0

    @given(coords_st, coords_st)
    @settings(max_examples=25, deadline=None)
    def test_source_route_equivalent_to_hop_function(self, src, dst):
        # A worm carrying the XY path as a source route behaves exactly
        # like one routed by the XY hop function.
        hop = xy_hops()
        path = [src]
        while path[-1] != dst:
            path.append(hop(path[-1], dst))
        a = WormPacket(0, src, dst, length=3, inject_cycle=0)
        b = WormPacket(0, src, dst, length=3, inject_cycle=0, path=tuple(path))
        la = lb = None
        for p in (a, b):
            net = WormholeNetwork(Mesh2D(N, N), hop, buffer_depth=2)
            net.run([p])
        assert a.latency == b.latency
