"""Property: the tile-sharded halo-exchange fixpoints ARE the global
kernels — bit-identical labels on both topologies, both safety
definitions, every fault regime (empty, singleton, sparse random,
clustered), and every tiling shape (square, uneven, degenerate 1xN,
tiles larger than the grid)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SafetyDefinition,
    enabled_fixpoint,
    enabled_fixpoint_sharded,
    label_mesh,
    unsafe_fixpoint,
    unsafe_fixpoint_sharded,
)
from repro.faults import FaultSet
from repro.faults.generators import clustered, uniform_random
from repro.mesh import Mesh2D, Torus2D
from repro.mesh.tiling import Tiling

W = H = 11

definitions = st.sampled_from(list(SafetyDefinition))
topologies = st.sampled_from([Mesh2D(W, H), Torus2D(W, H)])
#: Tile sides beyond the grid dimension exercise the clamp-to-grid path;
#: side 1 exercises tiles that are pure rim.
tile_sides = st.integers(1, W + 2)


@st.composite
def fault_sets(draw, max_faults=14):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


def assert_sharded_agrees(topology, faulty, definition, tiling):
    unsafe_g, _ = unsafe_fixpoint(topology, faulty, definition)
    unsafe_s, _ = unsafe_fixpoint_sharded(
        topology, faulty, definition, tiling=tiling
    )
    assert np.array_equal(unsafe_g, unsafe_s)
    enabled_g, _ = enabled_fixpoint(topology, faulty, unsafe_g)
    enabled_s, _ = enabled_fixpoint_sharded(
        topology, faulty, unsafe_g, tiling=tiling
    )
    assert np.array_equal(enabled_g, enabled_s)


class TestShardedEquivalence:
    @given(fault_sets(), topologies, definitions, tile_sides, tile_sides)
    @settings(max_examples=60, deadline=None)
    def test_random_fault_sets(self, faults, topology, definition, tw, th):
        tiling = Tiling(topology.shape, tw, th)
        assert_sharded_agrees(topology, faults.mask, definition, tiling)

    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    @pytest.mark.parametrize("f", [0, 1])
    def test_empty_and_singleton(self, topo_cls, definition, f):
        topo = topo_cls(W, H)
        faults = uniform_random(topo.shape, f, np.random.default_rng(3))
        assert_sharded_agrees(
            topo, faults.mask, definition, Tiling(topo.shape, 4, 4)
        )

    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    @pytest.mark.parametrize("seed", range(4))
    def test_clustered_faults(self, topo_cls, definition, seed):
        # Clustered faults build blocks spanning several tiles, which is
        # where multi-round halo-exchange convergence actually happens.
        topo = topo_cls(40, 40)
        faults = clustered(
            topo.shape, 60, np.random.default_rng(seed), clusters=3, spread=2.0
        )
        assert_sharded_agrees(
            topo, faults.mask, definition, Tiling(topo.shape, 13, 9)
        )

    @pytest.mark.parametrize(
        "topo", [Mesh2D(7, 13), Torus2D(13, 7), Mesh2D(1, 9), Torus2D(9, 1)]
    )
    @pytest.mark.parametrize("tile", [(1, 1), (3, 5), (1, 9), (20, 20)])
    def test_non_square_and_degenerate_tilings(self, topo, tile):
        # Uneven remainder tiles, 1xN strips, tiles wider than the grid,
        # and the torus self-wrap case (one tile along a dimension).
        faults = uniform_random(
            topo.shape, min(5, topo.num_nodes), np.random.default_rng(1)
        )
        for definition in SafetyDefinition:
            assert_sharded_agrees(
                topo, faults.mask, definition, Tiling(topo.shape, *tile)
            )


class TestShardedPipeline:
    @given(fault_sets(), topologies, definitions)
    @settings(max_examples=25, deadline=None)
    def test_shard_choice_is_invisible(self, faults, topology, definition):
        try:
            plain = label_mesh(topology, faults, definition, method="dense")
        except ValueError:
            return  # un-unwrappable torus labelings are rejected either way
        sharded = label_mesh(
            topology, faults, definition, method="auto", shard="4x4"
        )
        assert np.array_equal(plain.labels.unsafe, sharded.labels.unsafe)
        assert np.array_equal(plain.labels.enabled, sharded.labels.enabled)
        assert sharded.method.startswith("sharded[")
        # Geometry is stitched from the same full plane, so blocks and
        # regions agree too.
        assert [b.rect for b in plain.blocks] == [b.rect for b in sharded.blocks]
        assert len(plain.regions) == len(sharded.regions)

    def test_shard_requires_vectorized_backend(self):
        faults = FaultSet.from_coords((W, H), [(2, 2)])
        with pytest.raises(ValueError, match="shard"):
            label_mesh(
                Mesh2D(W, H), faults, backend="reference", shard="4x4"
            )


class TestShardedParallel:
    def test_jobs2_bit_for_bit(self, tmp_path):
        # The shared-memory pool path must agree with serial sharding
        # and with the global kernels.
        from repro.analysis.executor import WarmPoolRegistry

        topo = Mesh2D(40, 33)
        faults = clustered(
            topo.shape, 80, np.random.default_rng(7), clusters=4, spread=2.0
        )
        tiling = Tiling(topo.shape, 13, 11)
        registry = WarmPoolRegistry()
        try:
            for definition in SafetyDefinition:
                unsafe_g, _ = unsafe_fixpoint(topo, faults.mask, definition)
                unsafe_p, _ = unsafe_fixpoint_sharded(
                    topo,
                    faults.mask,
                    definition,
                    tiling=tiling,
                    jobs=2,
                    registry=registry,
                )
                assert np.array_equal(unsafe_g, unsafe_p)
                enabled_g, _ = enabled_fixpoint(topo, faults.mask, unsafe_g)
                enabled_p, _ = enabled_fixpoint_sharded(
                    topo,
                    faults.mask,
                    unsafe_g,
                    tiling=tiling,
                    jobs=2,
                    registry=registry,
                )
                assert np.array_equal(enabled_g, enabled_p)
        finally:
            registry.shutdown()
