"""Property-based tests for the labeling pipeline: the paper's claims
must hold on arbitrary fault patterns, not just the figures' examples."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition, label_mesh, unsafe_fixpoint
from repro.core.theorems import RESULT_CHECKS
from repro.faults import FaultSet
from repro.geometry import orthoconvex_closure
from repro.mesh import Mesh2D, Torus2D

W = H = 12


@st.composite
def fault_sets(draw, max_faults=16):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


definitions = st.sampled_from(list(SafetyDefinition))


class TestSectionFourClaims:
    @given(fault_sets(), definitions)
    @settings(max_examples=60, deadline=None)
    def test_all_theorem_checkers_pass(self, faults, definition):
        result = label_mesh(Mesh2D(W, H), faults, definition)
        for name, check in RESULT_CHECKS.items():
            outcome = check(result)
            assert outcome.holds, (name, outcome.detail)

    @given(fault_sets())
    @settings(max_examples=30, deadline=None)
    def test_theorem2_explicit(self, faults):
        # Each disabled region IS the orthoconvex closure of its faults.
        result = label_mesh(Mesh2D(W, H), faults)
        for region in result.regions:
            assert orthoconvex_closure(region.faults) == region.cells


class TestLabelInvariants:
    @given(fault_sets(), definitions)
    @settings(max_examples=40, deadline=None)
    def test_label_plane_invariants(self, faults, definition):
        result = label_mesh(Mesh2D(W, H), faults, definition)
        labels = result.labels
        # Faulty => unsafe and disabled; safe => enabled.
        assert not np.any(labels.faulty & ~labels.unsafe)
        assert not np.any(labels.faulty & labels.enabled)
        assert not np.any(~labels.unsafe & ~labels.enabled)

    @given(fault_sets())
    @settings(max_examples=30, deadline=None)
    def test_unsafe_monotone_in_faults(self, faults):
        # Adding a fault can only grow the unsafe set.
        m = Mesh2D(W, H)
        base, _ = unsafe_fixpoint(m, faults.mask)
        grown_faults = faults.mask.copy()
        grown_faults[0, 0] = True
        grown, _ = unsafe_fixpoint(m, grown_faults)
        assert not np.any(base & ~grown)

    @given(fault_sets(), definitions)
    @settings(max_examples=30, deadline=None)
    def test_region_cells_subset_of_blocks(self, faults, definition):
        result = label_mesh(Mesh2D(W, H), faults, definition)
        block_union = np.zeros((W, H), dtype=bool)
        for b in result.blocks:
            block_union |= b.cells.mask
        for r in result.regions:
            assert not np.any(r.cells.mask & ~block_union)

    @given(fault_sets())
    @settings(max_examples=30, deadline=None)
    def test_fault_conservation(self, faults):
        result = label_mesh(Mesh2D(W, H), faults)
        assert sum(b.num_faults for b in result.blocks) == len(faults)
        assert sum(r.num_faults for r in result.regions) == len(faults)


class TestRoundCounts:
    @given(fault_sets())
    @settings(max_examples=30, deadline=None)
    def test_rounds_bounded_by_flip_counts(self, faults):
        # The paper claims phase 1 converges "through max{d(B)} rounds";
        # random testing found counterexamples — staggered diagonal
        # chains cascade-merge blocks and need up to ~2.25x the final
        # block diameter (see EXPERIMENTS.md, "deviations").  What *is*
        # provable: every changing round flips at least one node, so the
        # round counts are bounded by the flip counts.
        result = label_mesh(Mesh2D(W, H), faults, SafetyDefinition.DEF_2B)
        assert result.rounds_phase1 <= max(1, result.num_unsafe_nonfaulty)
        assert result.rounds_phase2 <= max(1, result.num_activated)

    def test_paper_round_bound_counterexample(self):
        # Pin the deviation: this 5-fault staggered chain needs 10
        # phase-1 rounds although its single final block has diameter 8.
        faults = FaultSet.from_coords(
            (W, H), [(0, 5), (1, 4), (2, 6), (3, 3), (4, 7)]
        )
        result = label_mesh(Mesh2D(W, H), faults, SafetyDefinition.DEF_2B)
        bound = max(b.diameter for b in result.blocks)
        assert result.rounds_phase1 == 10
        assert bound == 8
        assert result.rounds_phase1 > bound  # the paper's claimed bound fails
        # ... but stays far below the network diameter, preserving the
        # paper's headline observation.
        assert result.rounds_phase1 < Mesh2D(W, H).diameter

    @given(fault_sets())
    @settings(max_examples=20, deadline=None)
    def test_empty_faults_zero_rounds(self, faults):
        if len(faults) == 0:
            result = label_mesh(Mesh2D(W, H), faults)
            assert result.rounds_phase1 == 0 and result.rounds_phase2 == 0


class TestTorusProperties:
    @given(fault_sets(max_faults=10))
    @settings(max_examples=30, deadline=None)
    def test_torus_claims_hold_in_unwrapped_frame(self, faults):
        result = label_mesh(Torus2D(W, H), faults)
        for name, check in RESULT_CHECKS.items():
            outcome = check(result)
            assert outcome.holds, (name, outcome.detail)

    @given(fault_sets(max_faults=10))
    @settings(max_examples=20, deadline=None)
    def test_torus_shift_invariance(self, faults):
        # Labeling a shifted fault pattern yields shifted labels: the
        # block/region *sizes* are invariant.
        t = Torus2D(W, H)
        r1 = label_mesh(t, faults)
        shifted = FaultSet.from_mask(np.roll(faults.mask, 3, axis=0))
        r2 = label_mesh(t, shifted)
        assert sorted(len(b.cells) for b in r1.blocks) == sorted(
            len(b.cells) for b in r2.blocks
        )
        assert sorted(len(g.cells) for g in r1.regions) == sorted(
            len(g.cells) for g in r2.regions
        )
