"""Property: the labeling protocols self-stabilize under dynamic faults
and lossy-but-fair channels.

Phase 1 is monotone in the fault set (a faulty node counts as unsafe),
so whatever crash schedule strikes mid-run and whatever a fair channel
drops, duplicates or delays, the converged labels equal the
from-scratch synchronous fixpoint on the *final* fault set.  These
tests drive both engines — synchronous and asynchronous — through
random schedules and adversarial channels, across meshes and tori and
both safety definitions, and demand bitwise-identical labels.

The reliable/static configuration is additionally held to bit-for-bit
round counts and message statistics against the undecorated engines
(regression against the historical behaviour).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition, label_mesh, unsafe_fixpoint
from repro.core.distributed import async_unsafe, distributed_unsafe
from repro.fabric import ChannelModel
from repro.faults import FaultSchedule, FaultSet, staggered_crashes, uniform_random
from repro.mesh import Mesh2D, Torus2D

W = H = 8


@st.composite
def fault_sets(draw, max_faults=8):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


@st.composite
def schedules(draw, max_crashes=5, max_time=12):
    """A crash schedule over the W x H grid (may overlap initial faults;
    crashing an already-faulty node is a no-op)."""
    n = draw(st.integers(0, max_crashes))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    times = draw(
        st.lists(st.integers(1, max_time), min_size=n, max_size=n)
    )
    return FaultSchedule(zip(times, coords))


@st.composite
def channels(draw):
    """Lossy-but-fair channel: any mix of drop/dup/jitter with a finite
    drop budget, or the reliable channel."""
    if draw(st.booleans()):
        return ChannelModel.reliable()
    return ChannelModel(
        drop_prob=draw(st.floats(0.0, 0.9)),
        dup_prob=draw(st.floats(0.0, 0.5)),
        jitter=draw(st.integers(0, 3)),
        max_drops=draw(st.integers(0, 300)),
        rng=np.random.default_rng(draw(st.integers(0, 2**31 - 1))),
    )


def expected_unsafe(topology, faults, schedule, definition):
    final = schedule.final_faults(faults)
    expected, _ = unsafe_fixpoint(topology, final.mask, definition)
    return expected


class TestSyncSelfStabilization:
    @given(
        fault_sets(),
        schedules(),
        channels(),
        st.sampled_from(list(SafetyDefinition)),
    )
    @settings(max_examples=25, deadline=None)
    def test_mesh(self, faults, schedule, channel, definition):
        m = Mesh2D(W, H)
        got, _, _ = distributed_unsafe(
            m, faults, definition, schedule=schedule, channel=channel
        )
        assert np.array_equal(
            got, expected_unsafe(m, faults, schedule, definition)
        )

    @given(
        fault_sets(max_faults=6),
        schedules(max_crashes=4),
        channels(),
        st.sampled_from(list(SafetyDefinition)),
    )
    @settings(max_examples=15, deadline=None)
    def test_torus(self, faults, schedule, channel, definition):
        t = Torus2D(W, H)
        got, _, _ = distributed_unsafe(
            t, faults, definition, schedule=schedule, channel=channel
        )
        assert np.array_equal(
            got, expected_unsafe(t, faults, schedule, definition)
        )

    @given(fault_sets(), schedules(), channels())
    @settings(max_examples=15, deadline=None)
    def test_full_stepping_agrees(self, faults, schedule, channel):
        m = Mesh2D(W, H)
        got, _, _ = distributed_unsafe(
            m, faults, active_set=False, schedule=schedule, channel=channel
        )
        assert np.array_equal(
            got,
            expected_unsafe(m, faults, schedule, SafetyDefinition.DEF_2B),
        )


class TestAsyncSelfStabilization:
    @given(
        fault_sets(),
        schedules(),
        channels(),
        st.sampled_from(list(SafetyDefinition)),
        st.integers(0, 2**31 - 1),
        st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_mesh(self, faults, schedule, channel, definition, seed, max_delay):
        m = Mesh2D(W, H)
        got, _ = async_unsafe(
            m,
            faults,
            np.random.default_rng(seed),
            definition,
            max_delay,
            schedule=schedule,
            channel=channel,
        )
        assert np.array_equal(
            got, expected_unsafe(m, faults, schedule, definition)
        )

    @given(
        fault_sets(max_faults=6),
        schedules(max_crashes=4),
        channels(),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_torus(self, faults, schedule, channel, seed):
        t = Torus2D(W, H)
        got, _ = async_unsafe(
            t,
            faults,
            np.random.default_rng(seed),
            schedule=schedule,
            channel=channel,
        )
        assert np.array_equal(
            got, expected_unsafe(t, faults, schedule, SafetyDefinition.DEF_2B)
        )


class TestGeneratorWorkloads:
    """The fault *generators* double as dynamic workloads via
    staggered_crashes: every pattern family must self-stabilize."""

    @pytest.mark.parametrize("gen_seed", range(5))
    @pytest.mark.parametrize("generator", ["uniform", "clustered", "rectangle"])
    def test_staggered_generator_patterns(self, generator, gen_seed):
        from repro.faults import clustered, rectangle_outage

        rng = np.random.default_rng(gen_seed)
        m = Mesh2D(10, 10)
        faults = uniform_random(m.shape, 6, rng)
        if generator == "uniform":
            crashes = uniform_random(m.shape, 5, rng)
        elif generator == "clustered":
            crashes = clustered(m.shape, 5, rng, clusters=2)
        else:
            crashes = rectangle_outage(m.shape, rng, extent=(2, 2))
        schedule = staggered_crashes(crashes, rng, max_time=8)
        channel = ChannelModel(
            drop_prob=0.3,
            dup_prob=0.1,
            jitter=1,
            max_drops=400,
            rng=np.random.default_rng(1000 + gen_seed),
        )
        got, _, _ = distributed_unsafe(
            m, faults, schedule=schedule, channel=channel
        )
        assert np.array_equal(
            got, expected_unsafe(m, faults, schedule, SafetyDefinition.DEF_2B)
        )


class TestPipelineRecovery:
    """label_mesh under a schedule equals a from-scratch run on the
    final fault set — the end-to-end re-convergence contract."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("torus", [False, True])
    def test_dynamic_equals_from_scratch(self, seed, torus):
        topo = (Torus2D if torus else Mesh2D)(9, 9)
        rng = np.random.default_rng(seed)
        faults = uniform_random(topo.shape, 5, rng)
        schedule = staggered_crashes(
            uniform_random(topo.shape, 3, rng), rng, max_time=6
        )
        channel = ChannelModel(
            drop_prob=0.25, max_drops=300, rng=np.random.default_rng(77 + seed)
        )
        dynamic = label_mesh(
            topo,
            faults,
            backend="distributed",
            schedule=schedule,
            channel=channel,
        )
        scratch = label_mesh(
            topo, schedule.final_faults(faults), backend="distributed"
        )
        assert np.array_equal(dynamic.labels.faulty, scratch.labels.faulty)
        assert np.array_equal(dynamic.labels.unsafe, scratch.labels.unsafe)
        assert np.array_equal(dynamic.labels.enabled, scratch.labels.enabled)
        assert dynamic.blocks == scratch.blocks
        assert dynamic.regions == scratch.regions

    def test_dynamic_requires_distributed_backend(self):
        m = Mesh2D(6, 6)
        faults = FaultSet.from_coords(m.shape, [(1, 1)])
        with pytest.raises(ValueError, match="distributed"):
            label_mesh(m, faults, schedule=FaultSchedule([(2, (3, 3))]))
        with pytest.raises(ValueError, match="distributed"):
            label_mesh(
                m,
                faults,
                channel=ChannelModel(
                    drop_prob=0.5, max_drops=10, rng=np.random.default_rng(0)
                ),
            )


class TestReliableRegression:
    """reliable() + empty schedule is bit-for-bit the historical run:
    same snapshots, same round counts, same message statistics."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("torus", [False, True])
    def test_bit_for_bit(self, seed, torus):
        topo = (Torus2D if torus else Mesh2D)(10, 10)
        faults = uniform_random(topo.shape, 12, np.random.default_rng(seed))
        plain = label_mesh(topo, faults, backend="distributed")
        decorated = label_mesh(
            topo,
            faults,
            backend="distributed",
            schedule=FaultSchedule.empty(),
            channel=ChannelModel.reliable(),
        )
        assert np.array_equal(plain.labels.unsafe, decorated.labels.unsafe)
        assert np.array_equal(plain.labels.enabled, decorated.labels.enabled)
        assert plain.rounds_phase1 == decorated.rounds_phase1
        assert plain.rounds_phase2 == decorated.rounds_phase2
        for a, b in (
            (plain.stats_phase1, decorated.stats_phase1),
            (plain.stats_phase2, decorated.stats_phase2),
        ):
            assert a.messages_per_round == b.messages_per_round
            assert a.changes_per_round == b.changes_per_round
            assert b.epochs == []
            assert b.dropped_messages == 0
            assert b.heartbeats == 0
