"""Property: the labeling protocols are schedule-oblivious.

The paper's synchronous lock-step assumption is a presentation
convenience; because the update rules are monotone and receivers merge
statuses monotonically, *any* asynchronous delivery order reaches the
same fixpoint.  These tests drive the protocols through random delayed
schedules and demand bitwise-identical labels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition, enabled_fixpoint, unsafe_fixpoint
from repro.core.distributed import async_enabled, async_unsafe
from repro.faults import FaultSet
from repro.mesh import Mesh2D, Torus2D

W = H = 8


@st.composite
def fault_sets(draw, max_faults=10):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


class TestAsyncEquivalence:
    @given(
        fault_sets(),
        st.sampled_from(list(SafetyDefinition)),
        st.integers(0, 2**31 - 1),
        st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_phase1_schedule_oblivious(self, faults, definition, seed, max_delay):
        m = Mesh2D(W, H)
        expected, _ = unsafe_fixpoint(m, faults.mask, definition)
        got, _ = async_unsafe(
            m, faults, np.random.default_rng(seed), definition, max_delay
        )
        assert np.array_equal(got, expected)

    @given(fault_sets(), st.integers(0, 2**31 - 1), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_phase2_schedule_oblivious(self, faults, seed, max_delay):
        m = Mesh2D(W, H)
        unsafe, _ = unsafe_fixpoint(m, faults.mask)
        expected, _ = enabled_fixpoint(m, faults.mask, unsafe)
        got, _ = async_enabled(
            m, faults, unsafe, np.random.default_rng(seed), max_delay
        )
        assert np.array_equal(got, expected)

    @given(fault_sets(max_faults=6), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_torus_schedule_oblivious(self, faults, seed):
        t = Torus2D(W, H)
        expected, _ = unsafe_fixpoint(t, faults.mask)
        got, _ = async_unsafe(t, faults, np.random.default_rng(seed))
        assert np.array_equal(got, expected)

    @given(fault_sets(max_faults=6))
    @settings(max_examples=10, deadline=None)
    def test_different_schedules_agree_with_each_other(self, faults):
        m = Mesh2D(W, H)
        a, _ = async_unsafe(m, faults, np.random.default_rng(1), max_delay=2)
        b, _ = async_unsafe(m, faults, np.random.default_rng(999), max_delay=7)
        assert np.array_equal(a, b)
