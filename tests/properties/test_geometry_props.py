"""Property-based tests for the geometry substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    CellSet,
    connect_orthoconvex,
    connected_components,
    corner_cells,
    is_connected,
    is_orthoconvex,
    orthoconvex_closure,
    perimeter,
)

GRID = (10, 10)


@st.composite
def cell_sets(draw, min_cells=0, max_cells=14):
    n = draw(st.integers(min_cells, max_cells))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, GRID[0] - 1), st.integers(0, GRID[1] - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return CellSet.from_coords(GRID, coords)


class TestClosureProperties:
    @given(cell_sets())
    def test_closure_is_superset(self, s):
        assert s <= orthoconvex_closure(s)

    @given(cell_sets())
    def test_closure_is_idempotent(self, s):
        c = orthoconvex_closure(s)
        assert orthoconvex_closure(c) == c

    @given(cell_sets())
    def test_closure_is_span_convex(self, s):
        c = orthoconvex_closure(s)
        if c:
            assert is_orthoconvex(c, require_connected=False)

    @given(cell_sets(), cell_sets())
    def test_closure_is_monotone(self, a, b):
        # S ⊆ T implies closure(S) ⊆ closure(T); test via union.
        u = a | b
        assert orthoconvex_closure(a) <= orthoconvex_closure(u)

    @given(cell_sets(min_cells=1))
    def test_connect_produces_polygon(self, s):
        p = connect_orthoconvex(s)
        assert s <= p
        assert is_orthoconvex(p, require_connected=True)

    @given(cell_sets(min_cells=1, max_cells=6))
    def test_connect_of_connected_closure_is_closure(self, s):
        c = orthoconvex_closure(s)
        if is_connected(c, connectivity=8):
            assert connect_orthoconvex(s) == c


class TestComponentProperties:
    @given(cell_sets(), st.sampled_from([4, 8]))
    def test_components_partition(self, s, conn):
        comps = connected_components(s, conn)
        assert sum(len(c) for c in comps) == len(s)
        union = CellSet.empty(GRID)
        for c in comps:
            assert union.isdisjoint(c)
            union = union | c
        assert union == s

    @given(cell_sets())
    def test_8_components_coarsen_4_components(self, s):
        assert len(connected_components(s, 8)) <= len(connected_components(s, 4))

    @given(cell_sets(min_cells=1))
    def test_each_component_is_connected(self, s):
        for c in connected_components(s, 4):
            assert is_connected(c, 4)


class TestBoundaryProperties:
    @given(cell_sets(min_cells=1))
    def test_perimeter_parity_and_bounds(self, s):
        p = perimeter(s)
        assert p % 2 == 0
        assert p >= 4  # at least one cell's worth
        assert p <= 4 * len(s)

    @given(cell_sets(min_cells=1))
    def test_corners_are_members(self, s):
        assert corner_cells(s) <= s

    @given(cell_sets(min_cells=1))
    def test_every_nonempty_region_has_a_corner(self, s):
        # Lemma 2's proof guarantees at least one corner in any region.
        assert len(corner_cells(s)) >= 1
