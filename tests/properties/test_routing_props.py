"""Property-based tests for the routing layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import label_mesh
from repro.faults import FaultSet
from repro.mesh import Mesh2D
from repro.routing import (
    BFSRouter,
    FaultModelView,
    MinimalRouter,
    WallRouter,
    XYRouter,
    minimal_feasible,
)

W = H = 10


@st.composite
def views(draw, max_faults=10):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    faults = FaultSet.from_coords((W, H), coords)
    result = label_mesh(Mesh2D(W, H), faults)
    return FaultModelView.from_regions(result)


coords_st = st.tuples(st.integers(0, W - 1), st.integers(0, H - 1))


class TestRouterContracts:
    @given(views(), coords_st, coords_st)
    @settings(max_examples=40, deadline=None)
    def test_paths_are_legal(self, view, s, d):
        for router_cls in (XYRouter, WallRouter, BFSRouter, MinimalRouter):
            r = router_cls(view).route(s, d)
            # Path starts at the source, hops are unit mesh moves, and
            # every visited node except a possibly-disabled source is
            # enabled.
            assert r.path[0] == s
            for a, b in zip(r.path, r.path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
                assert view.is_enabled(b)
            if r.delivered:
                assert r.path[-1] == d
                assert r.hops >= r.manhattan

    @given(views(), coords_st, coords_st)
    @settings(max_examples=40, deadline=None)
    def test_bfs_dominates_everyone(self, view, s, d):
        oracle = BFSRouter(view).route(s, d)
        for router_cls in (XYRouter, WallRouter, MinimalRouter):
            r = router_cls(view).route(s, d)
            if r.delivered:
                assert oracle.delivered
                assert oracle.hops <= r.hops

    @given(views(), coords_st, coords_st)
    @settings(max_examples=40, deadline=None)
    def test_minimal_router_iff_feasible(self, view, s, d):
        r = MinimalRouter(view).route(s, d)
        feasible = minimal_feasible(view, s, d)
        assert r.delivered == feasible
        if r.delivered:
            assert r.is_minimal

    @given(views(), coords_st, coords_st)
    @settings(max_examples=30, deadline=None)
    def test_xy_delivery_implies_minimal(self, view, s, d):
        r = XYRouter(view).route(s, d)
        if r.delivered:
            assert r.is_minimal
