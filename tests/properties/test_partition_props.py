"""Property-based tests for the open-problem cover heuristics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    CellSet,
    connect_orthoconvex,
    is_orthoconvex,
)
from repro.partition import FaultCover, cluster_cover, exact_cover, guillotine_cover

W = H = 14


@st.composite
def fault_sets(draw, min_cells=1, max_cells=8):
    n = draw(st.integers(min_cells, max_cells))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return CellSet.from_coords((W, H), coords)


def _check_valid(cover: FaultCover, faults: CellSet) -> None:
    union = CellSet.empty(faults.shape)
    for p in cover.polygons:
        assert is_orthoconvex(p)
        assert union.isdisjoint(p)
        union = union | p
    assert faults <= union
    assert cover.separation() >= 2


class TestHeuristicCovers:
    @given(fault_sets())
    @settings(max_examples=40, deadline=None)
    def test_cluster_cover_always_valid(self, faults):
        _check_valid(cluster_cover(faults), faults)

    @given(fault_sets())
    @settings(max_examples=40, deadline=None)
    def test_guillotine_cover_always_valid(self, faults):
        _check_valid(guillotine_cover(faults), faults)

    @given(fault_sets())
    @settings(max_examples=30, deadline=None)
    def test_heuristics_never_worse_than_single_polygon(self, faults):
        baseline = len(connect_orthoconvex(faults)) - len(faults)
        assert cluster_cover(faults).num_nonfaulty <= baseline
        assert guillotine_cover(faults).num_nonfaulty <= baseline

    @given(fault_sets(max_cells=6))
    @settings(max_examples=20, deadline=None)
    def test_exact_lower_bounds_heuristics(self, faults):
        exact = exact_cover(faults)
        _check_valid(exact, faults)
        assert exact.num_nonfaulty <= cluster_cover(faults).num_nonfaulty
        assert exact.num_nonfaulty <= guillotine_cover(faults).num_nonfaulty
