"""Property: the batched traffic engine IS the scalar oracle.

The numpy engine in :mod:`repro.network.batched` advances every
in-flight packet per cycle with fused array passes, tombstoned lanes
and reverse-write link arbitration.  None of that machinery may be
observable: on any view (blocks or regions, mesh or torus), any fault
workload (uniform or clustered), and either routing kernel, the result
columns must equal the scalar reference engine's bit for bit.

A second family pins the kernels to the path routers they vectorize:
single-packet XY traffic agrees with :class:`XYRouter`, and the
rectangle-detour kernel agrees with :class:`FRingRouter` on delivery
and hop count (the kernel drops by hop budget where the router's
seen-set detects a cycle, so drop *reasons* are pinned to the
blocked/budget pair rather than equated).
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition, label_mesh
from repro.faults import FaultSet, clustered
from repro.mesh import Mesh2D, Torus2D
from repro.network import BatchedNetwork, BatchedTraffic, synthetic_traffic
from repro.routing import DropReason, FaultModelView, FRingRouter, XYRouter

W = H = 8


@st.composite
def fault_sets(draw, max_faults=10):
    if draw(st.booleans()):  # clustered workload
        n = draw(st.integers(0, max_faults))
        seed = draw(st.integers(0, 2**31 - 1))
        return clustered((W, H), n, np.random.default_rng(seed), clusters=2)
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


def make_view(topo_kind, faults, view_kind, definition=SafetyDefinition.DEF_2B):
    topo = Mesh2D(W, H) if topo_kind == "mesh" else Torus2D(W, H)
    try:
        result = label_mesh(topo, faults, definition)
    except ValueError:
        # Torus unwrap needs one all-safe column and row; dense draws
        # that wrap unsafe nodes all the way around have no planar view
        # (outside the paper's sparse-fault regime) — discard them.
        assume(False)
    if view_kind == "blocks":
        return FaultModelView.from_blocks(result)
    return FaultModelView.from_regions(result)


class TestEngineEquality:
    @given(
        fault_sets(),
        st.sampled_from(["mesh", "torus"]),
        st.sampled_from(["blocks", "regions"]),
        st.sampled_from(["xy", "detour"]),
        st.sampled_from(list(SafetyDefinition)),
        st.integers(0, 2**31 - 1),
        st.floats(0.25, 8.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_batched_equals_reference(
        self, faults, topo_kind, view_kind, kernel, definition, seed, rate
    ):
        view = make_view(topo_kind, faults, view_kind, definition)
        assume(view.num_enabled >= 2)
        traffic = synthetic_traffic(
            view, 250, np.random.default_rng(seed), injection_rate=rate
        )
        fast = BatchedNetwork(view, kernel=kernel).run(traffic)
        slow = BatchedNetwork(view, kernel=kernel, engine="reference").run(
            traffic
        )
        assert fast.equals(slow), fast.diff_summary(slow)

    @given(fault_sets(), st.integers(0, 2**31 - 1), st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_compaction_invariance(self, faults, seed, frac):
        view = make_view("mesh", faults, "regions")
        assume(view.num_enabled >= 2)
        traffic = synthetic_traffic(
            view, 250, np.random.default_rng(seed), injection_rate=4.0
        )
        baseline = BatchedNetwork(view).run(traffic)
        tweaked = BatchedNetwork(view)
        tweaked._COMPACT_FRAC = frac
        assert tweaked.run(traffic).equals(baseline)


class TestKernelPins:
    @given(fault_sets(), st.sampled_from(["blocks", "regions"]), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_xy_kernel_matches_xy_router(self, faults, view_kind, seed):
        view = make_view("mesh", faults, view_kind)
        assume(view.num_enabled >= 2)
        rng = np.random.default_rng(seed)
        source, dest = view.random_enabled_pair(rng)
        oracle = XYRouter(view).route(source, dest)
        res = BatchedNetwork(view, kernel="xy").run(
            BatchedTraffic.from_pairs([(source, dest)])
        )
        assert bool(res.delivered_mask[0]) == oracle.delivered
        if oracle.delivered:
            assert int(res.hops[0]) == oracle.hops == oracle.manhattan
            assert int(res.latencies[0]) == oracle.hops  # lone packet
        else:
            assert res.drop_counts() == {"BLOCKED": 1}

    # FRingRouter insists on rectangular obstacles, so the pin runs on
    # the blocks view; regions coverage comes from the engine-equality
    # property above.
    @given(fault_sets(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_detour_kernel_matches_fring_router(self, faults, seed):
        view = make_view("mesh", faults, "blocks")
        assume(view.num_enabled >= 2)
        rng = np.random.default_rng(seed)
        source, dest = view.random_enabled_pair(rng)
        oracle = FRingRouter(view).route(source, dest)
        res = BatchedNetwork(view, kernel="detour").run(
            BatchedTraffic.from_pairs([(source, dest)])
        )
        if oracle.delivered and bool(res.delivered_mask[0]):
            assert int(res.hops[0]) == oracle.hops
        if not bool(res.delivered_mask[0]):
            # The kernel has no seen-set; livelock is cut by the hop
            # budget instead of cycle detection.
            reason = DropReason[next(iter(res.drop_counts()))]
            assert reason in (DropReason.BLOCKED, DropReason.BUDGET)

    @given(fault_sets(), st.sampled_from(["xy", "detour"]), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_latency_bounded_below_by_distance(self, faults, kernel, seed):
        view = make_view("mesh", faults, "regions")
        assume(view.num_enabled >= 2)
        traffic = synthetic_traffic(
            view, 120, np.random.default_rng(seed), injection_rate=2.0
        )
        res = BatchedNetwork(view, kernel=kernel).run(traffic)
        manhattan = np.abs(traffic.sx - traffic.dx) + np.abs(
            traffic.sy - traffic.dy
        )
        mask = res.delivered_mask
        assert (res.hops[mask] >= manhattan[mask]).all()
        lat = res.finish[mask] - res.inject[mask]
        assert (lat >= manhattan[mask]).all()
