"""Property: the sparse frontier kernels ARE the dense Jacobi kernels —
bit-identical labels and identical round counts, on both topologies,
both safety definitions, and every fault regime (empty, single, sparse
random, clustered)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SafetyDefinition,
    enabled_fixpoint,
    enabled_fixpoint_sparse,
    label_mesh,
    unsafe_fixpoint,
    unsafe_fixpoint_sparse,
)
from repro.faults import FaultSet
from repro.faults.generators import clustered, uniform_random
from repro.mesh import Mesh2D, Torus2D

W = H = 11

definitions = st.sampled_from(list(SafetyDefinition))
topologies = st.sampled_from([Mesh2D(W, H), Torus2D(W, H)])


@st.composite
def fault_sets(draw, max_faults=14):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


def assert_kernels_agree(topology, faulty, definition):
    unsafe_d, r1_d = unsafe_fixpoint(topology, faulty, definition)
    unsafe_s, r1_s = unsafe_fixpoint_sparse(topology, faulty, definition)
    assert np.array_equal(unsafe_d, unsafe_s)
    assert r1_d == r1_s
    enabled_d, r2_d = enabled_fixpoint(topology, faulty, unsafe_d)
    enabled_s, r2_s = enabled_fixpoint_sparse(topology, faulty, unsafe_d)
    assert np.array_equal(enabled_d, enabled_s)
    assert r2_d == r2_s


class TestFrontierEquivalence:
    @given(fault_sets(), topologies, definitions)
    @settings(max_examples=60, deadline=None)
    def test_random_fault_sets(self, faults, topology, definition):
        assert_kernels_agree(topology, faults.mask, definition)

    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    @pytest.mark.parametrize("f", [0, 1])
    def test_empty_and_singleton(self, topo_cls, definition, f):
        topo = topo_cls(W, H)
        faults = uniform_random(topo.shape, f, np.random.default_rng(3))
        assert_kernels_agree(topo, faults.mask, definition)

    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    @pytest.mark.parametrize("seed", range(4))
    def test_clustered_faults(self, topo_cls, definition, seed):
        # Clustered faults build the large merged blocks where multi-round
        # frontier waves actually occur.
        topo = topo_cls(40, 40)
        faults = clustered(
            topo.shape, 60, np.random.default_rng(seed), clusters=3, spread=2.0
        )
        assert_kernels_agree(topo, faults.mask, definition)

    @pytest.mark.parametrize(
        "topo", [Mesh2D(7, 13), Torus2D(13, 7), Mesh2D(1, 9), Torus2D(9, 1)]
    )
    def test_non_square_and_degenerate_grids(self, topo):
        # The flat-index arithmetic must not conflate width and height.
        faults = uniform_random(topo.shape, min(5, topo.num_nodes), np.random.default_rng(1))
        for definition in SafetyDefinition:
            assert_kernels_agree(topo, faults.mask, definition)


class TestPipelineMethods:
    @given(fault_sets(), topologies, definitions)
    @settings(max_examples=25, deadline=None)
    def test_method_choice_is_invisible(self, faults, topology, definition):
        try:
            dense = label_mesh(topology, faults, definition, method="dense")
        except ValueError:
            # Dense fault patterns can wrap unsafe labels all the way
            # around a torus, which has no planar unwrapping.  The
            # kernels must at least agree that the instance is
            # un-unwrappable.
            for method in ("frontier", "auto"):
                with pytest.raises(ValueError, match="unwrap"):
                    label_mesh(topology, faults, definition, method=method)
            return
        frontier = label_mesh(topology, faults, definition, method="frontier")
        auto = label_mesh(topology, faults, definition, method="auto")
        for other in (frontier, auto):
            assert np.array_equal(dense.labels.unsafe, other.labels.unsafe)
            assert np.array_equal(dense.labels.enabled, other.labels.enabled)
            assert dense.rounds_phase1 == other.rounds_phase1
            assert dense.rounds_phase2 == other.rounds_phase2
        assert dense.method == "dense"
        assert frontier.method == "frontier"

    def test_unknown_method_rejected(self):
        faults = FaultSet.from_coords((W, H), [(2, 2)])
        with pytest.raises(ValueError):
            label_mesh(Mesh2D(W, H), faults, method="turbo")
