"""Property: recovery is sound at EVERY crash point.

For any sequence of fault deltas applied through a durable
:class:`LabelingService`, killed at any WAL/snapshot byte boundary
(including mid-append — a torn record on disk — and mid-snapshot),
restart-with-recover yields a state that is

* a superset of everything *acknowledged* before the kill, missing
  nothing (acked ⊆ recovered),
* at most the acknowledged set plus the single in-flight delta
  (recovered ⊆ acked + pending — nothing is invented), and
* bit-for-bit equal to the from-scratch fixpoint of its own recovered
  fault set (the recovery path asserts this internally; these tests
  re-assert it from outside).

A second property pins exactly-once application: replaying a logged
sequence-numbered update (the wire-duplication / client-retry case)
never advances the engine version twice, before or after a crash.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition
from repro.mesh import Mesh2D, Torus2D
from repro.service import CrashPlan, LabelingService, SimulatedCrash
from repro.service.recovery import recover_state

W = H = 9

topologies = st.sampled_from([Mesh2D(W, H), Torus2D(W, H)])
coords = st.tuples(st.integers(0, W - 1), st.integers(0, H - 1))

#: Every crash seam the WAL and snapshot writers expose.
CRASH_POINTS = [
    "append.pre",
    "append.mid",
    "append.post",
    "snapshot.pre",
    "snapshot.mid",
    "snapshot.pre_rename",
]


@st.composite
def delta_sequences(draw, max_steps=10, max_batch=3):
    steps = []
    for _ in range(draw(st.integers(2, max_steps))):
        inject = draw(st.lists(coords, max_size=max_batch, unique=True))
        repair = draw(
            st.lists(coords, max_size=max_batch, unique=True).map(
                lambda cells, inj=inject: [c for c in cells if c not in inj]
            )
        )
        steps.append((inject, repair))
    return steps


def _run_until_crash(service, steps, idempotent):
    """Apply steps, recording what was acked; returns (acked, pending)."""
    acked = []
    for seq, (inject, repair) in enumerate(steps, start=1):
        try:
            if idempotent:
                service.apply_batch(
                    [(inject, repair)], client="prop", seq=seq
                )
            else:
                service.update(inject=inject, repair=repair)
        except SimulatedCrash:
            return acked, (inject, repair)
        acked.append((inject, repair))
    return acked, None


def _scratch_fixpoint(topology, steps):
    """The fault set after applying ``steps`` on a plain in-memory
    service (the acknowledged ground truth)."""
    plain = LabelingService(topology, SafetyDefinition.DEF_2B)
    for inject, repair in steps:
        plain.update(inject=inject, repair=repair)
    return plain


class TestRecoverySoundness:
    @given(
        topology=topologies,
        steps=delta_sequences(),
        point=st.sampled_from(CRASH_POINTS),
        occurrence=st.integers(1, 6),
        snapshot_every=st.sampled_from([1, 2, 5, None]),
        idempotent=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovered_equals_scratch_on_acked_set(
        self, tmp_path_factory, topology, steps, point, occurrence,
        snapshot_every, idempotent,
    ):
        wal_dir = str(tmp_path_factory.mktemp("wal"))
        plan = CrashPlan(point, occurrence=occurrence)
        service = LabelingService(
            topology,
            SafetyDefinition.DEF_2B,
            wal_dir=wal_dir,
            snapshot_every=snapshot_every,
            crash_hook=plan,
        )
        acked, pending = _run_until_crash(service, steps, idempotent)

        # recover_state verifies bit-for-bit against from-scratch
        # labeling internally and raises DurabilityError on divergence.
        recovered = recover_state(
            wal_dir, topology=topology, definition=SafetyDefinition.DEF_2B
        )
        assert recovered.verified

        # Acked deltas all survived: the recovered state is exactly the
        # scratch fixpoint of either the acked prefix or the acked
        # prefix + the single in-flight delta (never anything else).
        acked_cells = set(_scratch_fixpoint(topology, acked).faults.cells)
        recovered_cells = set(recovered.engine.faults.cells)
        candidates = [acked_cells]
        if pending is not None:
            candidates.append(
                set(
                    _scratch_fixpoint(
                        topology, acked + [pending]
                    ).faults.cells
                )
            )
        assert recovered_cells in candidates

        # And a recovered service keeps working durably.
        resumed = LabelingService.recover(
            wal_dir, topology=topology, definition=SafetyDefinition.DEF_2B
        )
        resumed.update(inject=[(0, 0)] if (0, 0) not in recovered_cells else [])
        assert resumed.verify_against_scratch()

    @given(
        steps=delta_sequences(max_steps=6),
        point=st.sampled_from(["append.pre", "append.mid", "append.post"]),
        occurrence=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_retries_never_double_apply(
        self, tmp_path_factory, steps, point, occurrence
    ):
        """At-least-once delivery + dedup = exactly-once application,
        across a crash: a client retrying its outstanding request after
        recovery gets it applied exactly once, and re-retrying is a pure
        duplicate that never moves the engine."""
        topology = Mesh2D(W, H)
        wal_dir = str(tmp_path_factory.mktemp("wal"))
        plan = CrashPlan(point, occurrence=occurrence)
        service = LabelingService(
            topology,
            SafetyDefinition.DEF_2B,
            wal_dir=wal_dir,
            snapshot_every=2,
            crash_hook=plan,
        )
        acked = []
        pending = None
        for seq, (inject, repair) in enumerate(steps, start=1):
            try:
                outcome = service.apply_batch(
                    [(inject, repair)], client="c", seq=seq
                )
                acked.append((seq, inject, repair, outcome))
            except SimulatedCrash:
                pending = (seq, inject, repair)
                break

        resumed = LabelingService.recover(
            wal_dir, topology=topology, definition=SafetyDefinition.DEF_2B
        )
        if pending is not None:
            # The only request a correct client retries: its in-flight
            # one.  Depending on where the crash hit, its record either
            # reached the log (retry dedups) or did not (retry applies
            # fresh); either way a second retry is a pure duplicate.
            seq, inject, repair = pending
            retry = resumed.apply_batch(
                [(inject, repair)], client="c", seq=seq
            )
            version_after_retry = resumed.version
            again = resumed.apply_batch(
                [(inject, repair)], client="c", seq=seq
            )
            assert again.duplicate
            assert again.version == retry.version
            assert again.deltas == retry.deltas
            assert resumed.version == version_after_retry  # untouched
            # The retried stream equals the crash-free run bit for bit.
            expected = _scratch_fixpoint(
                topology, [(i, r) for _, i, r, _ in acked] + [(inject, repair)]
            )
            assert set(resumed.faults.cells) == set(expected.faults.cells)
        elif acked:
            # No crash interrupted a request: replaying the last acked
            # seq verbatim answers from the stored outcome.
            seq, inject, repair, original = acked[-1]
            version_after_recovery = resumed.version
            replayed = resumed.apply_batch(
                [(inject, repair)], client="c", seq=seq
            )
            assert replayed.duplicate
            assert replayed.version == original.version
            assert replayed.deltas == original.deltas
            assert resumed.version == version_after_recovery
        assert resumed.verify_against_scratch()


class TestCrashFreeEquivalence:
    @given(topology=topologies, steps=delta_sequences(max_steps=8))
    @settings(max_examples=25, deadline=None)
    def test_durable_equals_plain_without_crashes(
        self, tmp_path_factory, topology, steps
    ):
        """With no chaos at all, the durable service is observationally
        identical to the plain in-memory one, and recovery of its WAL
        reproduces it bit-for-bit."""
        wal_dir = str(tmp_path_factory.mktemp("wal"))
        durable = LabelingService(
            topology, SafetyDefinition.DEF_2B, wal_dir=wal_dir,
            snapshot_every=3,
        )
        plain = LabelingService(topology, SafetyDefinition.DEF_2B)
        for inject, repair in steps:
            d = durable.update(inject=inject, repair=repair)
            p = plain.update(inject=inject, repair=repair)
            assert d.injected == p.injected and d.repaired == p.repaired
        assert durable.version == plain.version
        durable.finalize()
        recovered = recover_state(
            wal_dir, topology=topology, definition=SafetyDefinition.DEF_2B
        )
        assert recovered.clean and recovered.verified
        assert recovered.engine.version == plain.version
        assert set(recovered.engine.faults.cells) == set(plain.faults.cells)
