"""Vectorized vs reference geometry backends must agree bit-for-bit.

The ``"vectorized"`` backend (union-find labeling, searchsorted fault
mapping, run-length contiguity) is the default; the ``"reference"``
backend keeps the original per-cell BFS / per-component code as an
oracle.  These properties pin the fast path to the oracle: component
decomposition (both connectivities), connectedness, block and region
extraction through the full pipeline on mesh and torus under both
safety definitions and both fault generators, and the orthoconvexity
predicates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import label_mesh
from repro.core.status import SafetyDefinition
from repro.errors import GeometryError
from repro.faults import FaultSet
from repro.faults.generators import clustered, uniform_random
from repro.geometry import (
    CellSet,
    connected_components,
    is_connected,
    is_orthoconvex,
    label_components,
    row_runs,
    column_runs,
)
from repro.mesh import Mesh2D, Torus2D

GRID = (10, 10)


@st.composite
def cell_sets(draw, min_cells=0, max_cells=18):
    n = draw(st.integers(min_cells, max_cells))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, GRID[0] - 1), st.integers(0, GRID[1] - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return CellSet.from_coords(GRID, coords)


class TestComponentBackendAgreement:
    @given(cell_sets(), st.sampled_from([4, 8]))
    def test_connected_components_match(self, s, conn):
        fast = connected_components(s, connectivity=conn, backend="vectorized")
        slow = connected_components(s, connectivity=conn, backend="reference")
        assert fast == slow  # same components, same order

    @given(cell_sets(), st.sampled_from([4, 8]))
    def test_is_connected_matches(self, s, conn):
        assert is_connected(s, conn, backend="vectorized") == is_connected(
            s, conn, backend="reference"
        )

    @given(cell_sets(), st.sampled_from([4, 8]))
    def test_label_grid_matches_reference_order(self, s, conn):
        # label_components numbers components by smallest row-major
        # member — exactly the order the BFS oracle discovers them in.
        labels, count = label_components(s.mask, connectivity=conn)
        oracle = connected_components(s, connectivity=conn, backend="reference")
        assert count == len(oracle)
        expected = np.full(GRID, -1, dtype=np.int32)
        for k, comp in enumerate(oracle):
            expected[comp.mask] = k
        assert np.array_equal(labels, expected)

    @given(cell_sets())
    def test_partition_invariants(self, s):
        comps = connected_components(s, connectivity=4)
        union = np.zeros(GRID, dtype=bool)
        total = 0
        for c in comps:
            assert not np.any(union & c.mask)  # disjoint
            union |= c.mask
            total += len(c)
        assert np.array_equal(union, s.mask)
        assert total == len(s)


def _make_faults(topo, generator, count, seed):
    rng = np.random.default_rng(seed)
    if generator == "uniform":
        return uniform_random(topo.shape, count, rng)
    return clustered(topo.shape, count, rng, clusters=2)


@pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
@pytest.mark.parametrize(
    "definition", [SafetyDefinition.DEF_2A, SafetyDefinition.DEF_2B]
)
@pytest.mark.parametrize("generator", ["uniform", "clustered"])
class TestPipelineBackendAgreement:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), count=st.integers(0, 20))
    def test_label_mesh_cross_backend(self, topo_cls, definition, generator,
                                      seed, count):
        topo = topo_cls(12, 12)
        faults = _make_faults(topo, generator, count, seed)
        try:
            fast = label_mesh(topo, faults, definition=definition)
        except ValueError:
            # Dense torus workloads can make the unsafe set wrap every
            # column/row, which the unwrap step rejects before geometry
            # runs.  The backends must agree on that rejection too.
            with pytest.raises(ValueError):
                label_mesh(
                    topo, faults, definition=definition,
                    geometry_backend="reference",
                )
            return
        slow = label_mesh(
            topo, faults, definition=definition, geometry_backend="reference"
        )
        assert np.array_equal(fast.labels.unsafe, slow.labels.unsafe)
        assert np.array_equal(fast.labels.enabled, slow.labels.enabled)
        assert np.array_equal(fast.labels.disabled, slow.labels.disabled)
        assert fast.blocks == slow.blocks
        assert fast.regions == slow.regions


class TestOrthoconvexityBackendAgreement:
    @given(cell_sets())
    def test_is_orthoconvex_matches(self, s):
        assert is_orthoconvex(s, backend="vectorized") == is_orthoconvex(
            s, backend="reference"
        )

    @given(cell_sets())
    def test_row_runs_match_per_line_oracle(self, s):
        self._check_runs(s, row_runs, line_axis=1)

    @given(cell_sets())
    def test_column_runs_match_per_line_oracle(self, s):
        self._check_runs(s, column_runs, line_axis=0)

    @staticmethod
    def _check_runs(s, runs_fn, line_axis):
        # Naive oracle: walk each grid line with plain Python.
        mask = s.mask if line_axis == 1 else s.mask.T
        expected = []
        contiguous = True
        for line in range(mask.shape[1]):
            members = [i for i in range(mask.shape[0]) if mask[i, line]]
            if not members:
                continue
            lo, hi = members[0], members[-1]
            if len(members) != hi - lo + 1:
                contiguous = False
                break
            expected.append((line, lo, hi))
        if contiguous:
            assert runs_fn(s) == expected
        else:
            with pytest.raises(GeometryError):
                runs_fn(s)
