"""Property: the distributed protocol and the vectorized fixpoint are
the same algorithm — identical labels, identical round counts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SafetyDefinition, label_mesh
from repro.faults import FaultSet
from repro.mesh import Mesh2D, Torus2D

W = H = 9


@st.composite
def fault_sets(draw, max_faults=12):
    n = draw(st.integers(0, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


class TestBackendEquivalence:
    @given(fault_sets(), st.sampled_from(list(SafetyDefinition)))
    @settings(max_examples=25, deadline=None)
    def test_mesh_equivalence(self, faults, definition):
        m = Mesh2D(W, H)
        rv = label_mesh(m, faults, definition, backend="vectorized")
        rd = label_mesh(m, faults, definition, backend="distributed")
        assert np.array_equal(rv.labels.unsafe, rd.labels.unsafe)
        assert np.array_equal(rv.labels.enabled, rd.labels.enabled)
        assert rv.rounds_phase1 == rd.rounds_phase1
        assert rv.rounds_phase2 == rd.rounds_phase2

    @given(fault_sets(max_faults=8))
    @settings(max_examples=15, deadline=None)
    def test_torus_equivalence(self, faults):
        t = Torus2D(W, H)
        rv = label_mesh(t, faults, backend="vectorized")
        rd = label_mesh(t, faults, backend="distributed")
        assert np.array_equal(rv.labels.unsafe, rd.labels.unsafe)
        assert np.array_equal(rv.labels.enabled, rd.labels.enabled)
        assert rv.unwrap_shift == rd.unwrap_shift

    @given(fault_sets(max_faults=8))
    @settings(max_examples=10, deadline=None)
    def test_chatty_mode_equivalent_labels(self, faults):
        m = Mesh2D(W, H)
        quiet = label_mesh(m, faults, backend="distributed", chatty=False)
        loud = label_mesh(m, faults, backend="distributed", chatty=True)
        assert np.array_equal(quiet.labels.enabled, loud.labels.enabled)
        assert quiet.rounds_phase1 == loud.rounds_phase1
