"""Deeper structural properties of orthogonal convex regions.

Two consequences of Theorem 1 that the routing story relies on, checked
on pipeline-produced disabled regions over random fault patterns:

* **staircase connectivity** — any two cells of a connected orthoconvex
  region are joined by a monotone path inside it (no backtracking:
  the geometric basis for progressive routing);
* **tight perimeter** — an orthoconvex region's boundary length is
  exactly ``2 * (bbox_width + bbox_height)``: every grid line crosses
  the boundary at most twice, so rim detours are as short as a
  rectangle's of the same extent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import label_mesh
from repro.faults import FaultSet
from repro.geometry import (
    is_monotone_path,
    monotone_path_within,
    perimeter,
)
from repro.mesh import Mesh2D

W = H = 11


@st.composite
def fault_sets(draw, max_faults=12):
    n = draw(st.integers(1, max_faults))
    coords = draw(
        st.lists(
            st.tuples(st.integers(0, W - 1), st.integers(0, H - 1)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return FaultSet.from_coords((W, H), coords)


class TestRegionStructure:
    @given(fault_sets())
    @settings(max_examples=40, deadline=None)
    def test_staircase_connectivity_of_regions(self, faults):
        result = label_mesh(Mesh2D(W, H), faults)
        for region in result.regions:
            cells = region.cells.coords()
            # All pairs for small regions; corner-to-corner for larger.
            pairs = (
                [(u, v) for u in cells for v in cells]
                if len(cells) <= 8
                else [(cells[0], cells[-1]), (cells[-1], cells[0])]
            )
            for u, v in pairs:
                path = monotone_path_within(region.cells, u, v)
                assert path is not None, (u, v, cells)
                assert is_monotone_path(path)

    @given(fault_sets())
    @settings(max_examples=40, deadline=None)
    def test_perimeter_identity(self, faults):
        result = label_mesh(Mesh2D(W, H), faults)
        for region in result.regions:
            x0, y0, x1, y1 = region.cells.bounding_box()
            width = x1 - x0 + 1
            height = y1 - y0 + 1
            assert perimeter(region.cells) == 2 * (width + height)

    @given(fault_sets())
    @settings(max_examples=30, deadline=None)
    def test_blocks_satisfy_the_same_identity(self, faults):
        # Rectangles are orthoconvex, so the identity holds a fortiori.
        result = label_mesh(Mesh2D(W, H), faults)
        for block in result.blocks:
            assert perimeter(block.cells) == 2 * (
                block.rect.width + block.rect.height
            )
