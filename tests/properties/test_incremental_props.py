"""Property: the incremental engine IS from-scratch labeling — after ANY
sequence of inject/repair deltas, the maintained planes are bit-for-bit
the fixpoints of the accumulated fault set, on both topologies and both
safety definitions, for single-cell deltas (the fast paths), batches
(the vectorized wave), clustered faults (block merges/splits), and
repeated shapes (cache-hit paths)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockEnableCache,
    IncrementalLabeling,
    SafetyDefinition,
    enabled_fixpoint,
    label_mesh,
    unsafe_fixpoint,
)
from repro.errors import FaultModelError
from repro.faults.generators import clustered, uniform_random
from repro.mesh import Mesh2D, Torus2D

W = H = 11

definitions = st.sampled_from(list(SafetyDefinition))
topologies = st.sampled_from([Mesh2D(W, H), Torus2D(W, H)])
coords = st.tuples(st.integers(0, W - 1), st.integers(0, H - 1))


@st.composite
def delta_sequences(draw, max_steps=12, max_batch=4):
    """A sequence of (inject, repair) deltas over the W x H grid.

    Repairs are drawn from anywhere — repairing a non-faulty cell must
    be a harmless no-op, so the strategy does not try to be clever about
    which cells are currently faulty.
    """
    steps = []
    for _ in range(draw(st.integers(1, max_steps))):
        inject = draw(st.lists(coords, max_size=max_batch, unique=True))
        repair = draw(
            st.lists(
                coords.filter(lambda c: c not in inject),
                max_size=max_batch,
                unique=True,
            )
        )
        steps.append((inject, [c for c in repair if c not in inject]))
    return steps


def assert_matches_scratch(engine):
    """Bit-for-bit equality of both planes with the from-scratch
    fixpoints of the engine's accumulated fault set (machine frame, so
    it covers tori exactly)."""
    faulty = engine.labels.faulty
    unsafe, _ = unsafe_fixpoint(engine.topology, faulty, engine.definition)
    enabled, _ = enabled_fixpoint(engine.topology, faulty, unsafe)
    assert np.array_equal(engine.labels.unsafe, unsafe)
    assert np.array_equal(engine.labels.enabled, enabled)
    assert engine.verify_against_scratch()


class TestDeltaSequences:
    @given(delta_sequences(), topologies, definitions)
    @settings(max_examples=40, deadline=None)
    def test_any_sequence_matches_scratch(self, steps, topology, definition):
        engine = IncrementalLabeling(topology, definition)
        for inject, repair in steps:
            engine.apply(inject=inject, repair=repair)
        assert_matches_scratch(engine)

    @given(delta_sequences(max_steps=6), topologies, definitions)
    @settings(max_examples=20, deadline=None)
    def test_every_intermediate_state_matches(self, steps, topology, definition):
        engine = IncrementalLabeling(topology, definition)
        for inject, repair in steps:
            engine.apply(inject=inject, repair=repair)
            assert_matches_scratch(engine)


class TestSingleCellFastPaths:
    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    def test_inject_repair_walk(self, topo_cls, definition):
        # Single-cell deltas are the fast-path workload; walk a long
        # random stream of them and pin every state to scratch.
        topo = topo_cls(12, 12)
        engine = IncrementalLabeling(topo, definition)
        rng = np.random.default_rng(5)
        live = []
        for step in range(120):
            if live and rng.random() < 0.4:
                c = live.pop(rng.integers(len(live)))
                engine.repair([c])
            else:
                c = (int(rng.integers(12)), int(rng.integers(12)))
                if not engine.is_faulty(c):
                    live.append(c)
                engine.inject([c])
            if step % 10 == 9:
                assert_matches_scratch(engine)
        assert_matches_scratch(engine)

    def test_fast_path_reports_are_exact(self):
        engine = IncrementalLabeling(Mesh2D(16, 16))
        d = engine.inject([(8, 8)])
        assert d.injected == ((8, 8),)
        assert d.rounds_phase1 == 0 and d.rounds_phase2 == 0
        assert d.blocks_changed == 1
        d = engine.repair([(8, 8)])
        assert d.repaired == ((8, 8),)
        assert d.newly_safe == 1 and d.newly_activated == 1
        assert engine.num_faults == 0 and engine.num_blocks == 0
        assert_matches_scratch(engine)


class TestBatchAndGenerators:
    @pytest.mark.parametrize("topo_cls", [Mesh2D, Torus2D])
    @pytest.mark.parametrize("definition", list(SafetyDefinition))
    @pytest.mark.parametrize("generator", ["uniform", "clustered"])
    def test_large_batches_use_the_vectorized_wave(
        self, topo_cls, definition, generator
    ):
        # >= 64 seeds routes through the warm-started sparse kernel.
        topo = topo_cls(60, 60)
        rng = np.random.default_rng(17)
        if generator == "uniform":
            first = uniform_random(topo.shape, 80, rng)
            second = uniform_random(topo.shape, 90, rng)
        else:
            first = clustered(topo.shape, 80, rng, clusters=3, spread=2.0)
            second = clustered(topo.shape, 90, rng, clusters=4, spread=2.5)
        engine = IncrementalLabeling.from_faults(topo, first, definition)
        assert_matches_scratch(engine)
        engine.inject(list(second))
        assert_matches_scratch(engine)
        engine.repair(list(first))
        assert_matches_scratch(engine)

    @pytest.mark.parametrize("seed", range(6))
    def test_dense_torus_wraps(self, seed):
        # An 8x8 torus at high density grows components that wrap a full
        # dimension — the irregular-block resync path.
        topo = Torus2D(8, 8)
        engine = IncrementalLabeling(topo)
        rng = np.random.default_rng(seed)
        for _ in range(40):
            c = (int(rng.integers(8)), int(rng.integers(8)))
            if rng.random() < 0.35 and engine.is_faulty(c):
                engine.repair([c])
            else:
                engine.inject([c])
        assert_matches_scratch(engine)


class TestCachePaths:
    def test_repeated_shapes_hit_the_cache(self):
        cache = BlockEnableCache()
        engine = IncrementalLabeling(Mesh2D(40, 40), cache=cache)
        # The same 2x2 shape at many positions: one miss, then hits.
        for i in range(6):
            x = 3 + 6 * (i % 5)
            y = 3 + 6 * (i // 5)
            engine.inject([(x, y), (x + 1, y), (x, y + 1), (x + 1, y + 1)])
        assert cache.misses >= 1
        assert cache.hits > cache.misses
        assert_matches_scratch(engine)

    def test_cache_hits_are_still_exact(self):
        # Solve the same shapes with and without a shared cache; labels
        # must be identical either way.
        shapes = [[(4, 4), (5, 4)], [(14, 4), (15, 4)], [(24, 4), (25, 4)]]
        cached = IncrementalLabeling(Mesh2D(32, 32), cache=BlockEnableCache())
        fresh = IncrementalLabeling(Mesh2D(32, 32), cache=BlockEnableCache(capacity=1))
        for shape in shapes:
            cached.inject(shape)
            fresh.inject(shape)
        assert np.array_equal(cached.labels.enabled, fresh.labels.enabled)
        assert_matches_scratch(cached)
        assert_matches_scratch(fresh)

    def test_shared_cache_across_engines(self):
        cache = BlockEnableCache()
        first = IncrementalLabeling(Mesh2D(20, 20), cache=cache)
        first.inject([(5, 5), (6, 5), (5, 6), (6, 6)])
        misses = cache.misses
        second = IncrementalLabeling(Mesh2D(20, 20), cache=cache)
        second.inject([(10, 10), (11, 10), (10, 11), (11, 11)])
        assert cache.misses == misses  # same shape, served from cache
        assert_matches_scratch(second)


class TestContracts:
    def test_inject_and_repair_overlap_rejected(self):
        engine = IncrementalLabeling(Mesh2D(8, 8))
        with pytest.raises(FaultModelError):
            engine.apply(inject=[(2, 2)], repair=[(2, 2)])

    def test_noop_deltas_cost_nothing(self):
        engine = IncrementalLabeling(Mesh2D(8, 8))
        v0 = engine.version
        d = engine.apply()
        assert d.rounds_phase1 == 0 and d.rounds_phase2 == 0
        assert engine.version == v0
        engine.inject([(3, 3)])
        d = engine.inject([(3, 3)])  # already faulty
        assert d.injected == () and d.newly_unsafe == 0
        d = engine.repair([(7, 7)])  # not faulty
        assert d.repaired == () and d.newly_safe == 0

    def test_snapshot_equals_label_mesh(self):
        topo = Mesh2D(24, 24)
        faults = clustered(
            topo.shape, 30, np.random.default_rng(9), clusters=3, spread=2.0
        )
        engine = IncrementalLabeling.from_faults(topo, faults)
        snap = engine.snapshot()
        scratch = label_mesh(topo, faults)
        assert np.array_equal(snap.labels.unsafe, scratch.labels.unsafe)
        assert np.array_equal(snap.labels.enabled, scratch.labels.enabled)
        assert snap.blocks == scratch.blocks
        assert snap.regions == scratch.regions
