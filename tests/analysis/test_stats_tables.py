"""Unit tests for summary statistics and table formatting."""

import math

import pytest

from repro.analysis import Summary, format_table, summarize


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.n == 0 and math.isnan(s.mean)

    def test_single(self):
        s = summarize([4.0])
        assert s.n == 1 and s.mean == 4.0 and s.std == 0.0 and s.stderr == 0.0

    def test_mean_and_std(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.std == pytest.approx(math.sqrt(5 / 3))

    def test_stderr_shrinks_with_n(self):
        small = summarize([0.0, 1.0] * 4)
        large = summarize([0.0, 1.0] * 100)
        assert large.stderr < small.stderr

    def test_ci_contains_mean(self):
        s = summarize([1.0, 2.0, 3.0])
        lo, hi = s.ci95
        assert lo <= s.mean <= hi

    def test_str_format(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestFormatTable:
    def test_basic_layout(self):
        t = format_table(["a", "bb"], [[1, 2.5], [30, 4.125]])
        lines = t.splitlines()
        assert len(lines) == 4
        assert "2.500" in t and "4.125" in t

    def test_title(self):
        t = format_table(["x"], [[1]], title="My Table")
        assert t.splitlines()[0] == "My Table"

    def test_column_count_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment_consistent(self):
        t = format_table(["col"], [[1], [100]])
        lines = t.splitlines()
        assert len(lines[-1]) == len(lines[-2])
