"""Unit tests for the amortized cell executor."""

import os

import numpy as np
import pytest

from repro.analysis import executor
from repro.analysis.executor import (
    ExecutionReport,
    WarmPoolRegistry,
    _chunk_size,
    run_cells,
)


def _square(task):
    """Module-level (picklable) pure cell: exact float from the task."""
    return float(np.random.default_rng(task).random()) + task * task


def _poison(task):
    """Kills its worker outright on task 13 (parallel only)."""
    if task == 13:
        os._exit(1)
    return task * 2


def _slow(task):
    """A cell expensive enough for calibration to favour parallelism."""
    import time

    time.sleep(0.002)
    return task + 1


BROKEN = "<broken>"


def _marker():
    return BROKEN


@pytest.fixture
def registry():
    reg = WarmPoolRegistry()
    yield reg
    reg.shutdown()


class TestChunkingBitIdentical:
    @pytest.mark.parametrize("jobs", [2, 3])
    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_matches_serial_exactly(self, registry, jobs, chunk_size):
        tasks = list(range(11))
        serial = [_square(t) for t in tasks]
        rows, report = run_cells(
            _square, tasks, jobs, chunk_size=chunk_size, registry=registry
        )
        assert rows == serial  # exact floats, in task order
        assert report.parallel and report.chunk_size == chunk_size

    def test_jobs_one_is_serial(self, registry):
        tasks = [3, 1, 4]
        rows, report = run_cells(_square, tasks, 1, registry=registry)
        assert rows == [_square(t) for t in tasks]
        assert report == ExecutionReport(
            cells=3, jobs=1, parallel=False, chunk_size=1,
            calibrated_cell_s=0.0, pool_was_warm=False,
        )

    def test_empty_tasks(self, registry):
        rows, report = run_cells(_square, [], 4, registry=registry)
        assert rows == [] and not report.parallel


class TestSerialFallback:
    def test_cheap_cells_run_in_parent(self, registry):
        # Near-instant cells can never amortize pool costs, so the
        # calibrated decision must fall back to serial.
        rows, report = run_cells(_square, list(range(8)), 2, registry=registry)
        assert rows == [_square(t) for t in range(8)]
        assert not report.parallel
        assert report.calibrated_cell_s > 0.0
        assert not registry.warm(2)  # no pool was ever spawned

    def test_parallel_chosen_when_savings_dominate(self, registry, monkeypatch):
        # Make the decision CPU-independent: pretend 4 usable CPUs and a
        # warm pool, so 2 ms/cell over 40 cells clearly beats dispatch.
        monkeypatch.setattr(executor, "_usable_cpus", lambda: 4)
        registry.get(2)
        rows, report = run_cells(_slow, list(range(40)), 2, registry=registry)
        assert rows == [t + 1 for t in range(40)]
        assert report.parallel and report.pool_was_warm

    def test_single_cpu_never_goes_parallel(self, registry, monkeypatch):
        # On a one-CPU box extra workers add pure overhead; the
        # estimated speedup is zero, so even expensive cells stay serial.
        monkeypatch.setattr(executor, "_usable_cpus", lambda: 1)
        registry.get(2)
        _, report = run_cells(_slow, list(range(12)), 2, registry=registry)
        assert not report.parallel


class TestBrokenPoolRecovery:
    def test_poison_cell_marked_and_pool_reusable(self, registry):
        tasks = [1, 13, 3, 4]
        rows, report = run_cells(
            _poison, tasks, 2, broken_marker=_marker,
            chunk_size=1, registry=registry,
        )
        # Healthy cells keep their real results around the dead one.
        assert rows == [2, BROKEN, 6, 8]
        assert report.parallel
        # The poisoned pool was replaced: the registry still hands out a
        # working pool for the next call.
        assert registry.warm(2)
        rows2, _ = run_cells(
            _square, [5, 6], 2, chunk_size=1, registry=registry
        )
        assert rows2 == [_square(5), _square(6)]

    def test_poison_isolated_inside_large_chunk(self, registry):
        # With several cells per dispatch the failing chunk must be
        # re-run cell by cell so only the poison cell is marked.
        tasks = [1, 2, 13, 4, 5, 6]
        rows, _ = run_cells(
            _poison, tasks, 2, broken_marker=_marker,
            chunk_size=3, registry=registry,
        )
        assert rows == [2, 4, BROKEN, 8, 10, 12]

    def test_no_marker_reraises(self, registry):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            run_cells(_poison, [13], 2, chunk_size=1, registry=registry)


class TestChunkSize:
    def test_targets_chunk_duration(self):
        # 1 ms cells, plenty of work: ~50 cells per chunk.
        assert _chunk_size(0.001, 10_000, 2) == 51

    def test_load_balance_bound(self):
        # Few cheap cells: at least ~4 chunks per worker wins.
        assert _chunk_size(1e-7, 64, 2) == 8

    def test_bounds(self):
        assert _chunk_size(0.5, 100, 2) == 1  # expensive cells: singles
        assert _chunk_size(0.0, 10_000, 1) == 256  # capped at _MAX_CHUNK
        assert _chunk_size(0.001, 0, 2) == 1  # empty


class TestWarmPoolRegistry:
    def test_get_reuses_same_pool(self, registry):
        assert registry.get(2) is registry.get(2)
        assert registry.warm(2) and not registry.warm(3)

    def test_discard_forces_respawn(self, registry):
        first = registry.get(2)
        registry.discard(2)
        assert not registry.warm(2)
        assert registry.get(2) is not first
