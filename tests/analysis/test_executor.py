"""Unit tests for the amortized cell executor and the shared-memory arena."""

import gc
import glob
import os

import numpy as np
import pytest

from repro.analysis import executor
from repro.analysis.executor import (
    ExecutionReport,
    SharedArena,
    WarmPoolRegistry,
    _chunk_size,
    attach_block,
    run_cells,
)


def _square(task):
    """Module-level (picklable) pure cell: exact float from the task."""
    return float(np.random.default_rng(task).random()) + task * task


def _poison(task):
    """Kills its worker outright on task 13 (parallel only)."""
    if task == 13:
        os._exit(1)
    return task * 2


def _slow(task):
    """A cell expensive enough for calibration to favour parallelism."""
    import time

    time.sleep(0.002)
    return task + 1


BROKEN = "<broken>"


def _marker():
    return BROKEN


@pytest.fixture
def registry():
    reg = WarmPoolRegistry()
    yield reg
    reg.shutdown()


class TestChunkingBitIdentical:
    @pytest.mark.parametrize("jobs", [2, 3])
    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_matches_serial_exactly(self, registry, jobs, chunk_size):
        tasks = list(range(11))
        serial = [_square(t) for t in tasks]
        rows, report = run_cells(
            _square, tasks, jobs, chunk_size=chunk_size, registry=registry
        )
        assert rows == serial  # exact floats, in task order
        assert report.parallel and report.chunk_size == chunk_size

    def test_jobs_one_is_serial(self, registry):
        tasks = [3, 1, 4]
        rows, report = run_cells(_square, tasks, 1, registry=registry)
        assert rows == [_square(t) for t in tasks]
        assert report == ExecutionReport(
            cells=3, jobs=1, parallel=False, chunk_size=1,
            calibrated_cell_s=0.0, pool_was_warm=False,
        )

    def test_empty_tasks(self, registry):
        rows, report = run_cells(_square, [], 4, registry=registry)
        assert rows == [] and not report.parallel


class TestSerialFallback:
    def test_cheap_cells_run_in_parent(self, registry):
        # Near-instant cells can never amortize pool costs, so the
        # calibrated decision must fall back to serial.
        rows, report = run_cells(_square, list(range(8)), 2, registry=registry)
        assert rows == [_square(t) for t in range(8)]
        assert not report.parallel
        assert report.calibrated_cell_s > 0.0
        assert not registry.warm(2)  # no pool was ever spawned

    def test_parallel_chosen_when_savings_dominate(self, registry, monkeypatch):
        # Make the decision CPU-independent: pretend 4 usable CPUs and a
        # warm pool, so 2 ms/cell over 40 cells clearly beats dispatch.
        monkeypatch.setattr(executor, "_usable_cpus", lambda: 4)
        registry.get(2)
        rows, report = run_cells(_slow, list(range(40)), 2, registry=registry)
        assert rows == [t + 1 for t in range(40)]
        assert report.parallel and report.pool_was_warm

    def test_single_cpu_never_goes_parallel(self, registry, monkeypatch):
        # On a one-CPU box extra workers add pure overhead; the
        # estimated speedup is zero, so even expensive cells stay serial.
        monkeypatch.setattr(executor, "_usable_cpus", lambda: 1)
        registry.get(2)
        _, report = run_cells(_slow, list(range(12)), 2, registry=registry)
        assert not report.parallel


class TestBrokenPoolRecovery:
    def test_poison_cell_marked_and_pool_reusable(self, registry):
        tasks = [1, 13, 3, 4]
        rows, report = run_cells(
            _poison, tasks, 2, broken_marker=_marker,
            chunk_size=1, registry=registry,
        )
        # Healthy cells keep their real results around the dead one.
        assert rows == [2, BROKEN, 6, 8]
        assert report.parallel
        # The poisoned pool was replaced: the registry still hands out a
        # working pool for the next call.
        assert registry.warm(2)
        rows2, _ = run_cells(
            _square, [5, 6], 2, chunk_size=1, registry=registry
        )
        assert rows2 == [_square(5), _square(6)]

    def test_poison_isolated_inside_large_chunk(self, registry):
        # With several cells per dispatch the failing chunk must be
        # re-run cell by cell so only the poison cell is marked.
        tasks = [1, 2, 13, 4, 5, 6]
        rows, _ = run_cells(
            _poison, tasks, 2, broken_marker=_marker,
            chunk_size=3, registry=registry,
        )
        assert rows == [2, 4, BROKEN, 8, 10, 12]

    def test_no_marker_reraises(self, registry):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            run_cells(_poison, [13], 2, chunk_size=1, registry=registry)


class TestChunkSize:
    def test_targets_chunk_duration(self):
        # 1 ms cells, plenty of work: ~50 cells per chunk.
        assert _chunk_size(0.001, 10_000, 2) == 51

    def test_load_balance_bound(self):
        # Few cheap cells: at least ~4 chunks per worker wins.
        assert _chunk_size(1e-7, 64, 2) == 8

    def test_bounds(self):
        assert _chunk_size(0.5, 100, 2) == 1  # expensive cells: singles
        assert _chunk_size(0.0, 10_000, 1) == 256  # capped at _MAX_CHUNK
        assert _chunk_size(0.001, 0, 2) == 1  # empty


class TestWarmPoolRegistry:
    def test_get_reuses_same_pool(self, registry):
        assert registry.get(2) is registry.get(2)
        assert registry.warm(2) and not registry.warm(3)

    def test_discard_forces_respawn(self, registry):
        first = registry.get(2)
        registry.discard(2)
        assert not registry.warm(2)
        assert registry.get(2) is not first


def _arena_segments():
    """Names of live repro shared-memory segments on this box."""
    return sorted(glob.glob("/dev/shm/repro-arena-*"))


class TestSharedArena:
    def test_create_attach_roundtrip(self):
        before = _arena_segments()
        with SharedArena() as arena:
            view, block = arena.ndarray((5, 4), np.bool_)
            assert not view.any()  # zero-filled on creation
            view[2, 1] = True
            attached = attach_block(block)
            assert attached.shape == (5, 4) and attached.dtype == np.bool_
            assert attached[2, 1]
            attached[0, 0] = True  # same physical memory, both ways
            assert view[0, 0]
            assert len(_arena_segments()) == len(before) + 1
        assert _arena_segments() == before  # context exit unlinked it

    def test_close_is_idempotent(self):
        arena = SharedArena()
        arena.ndarray((3, 3), np.bool_)
        arena.close()
        arena.close()
        assert _arena_segments() == []

    def test_finalizer_unlinks_leaked_arenas(self):
        arena = SharedArena()
        arena.ndarray((4, 4), np.bool_)
        assert len(_arena_segments()) == 1
        del arena  # never closed: the GC finalizer must clean up
        gc.collect()
        assert _arena_segments() == []


class TestShardedShmHygiene:
    """Regression: a tile worker dying mid-round must not leak
    ``/dev/shm`` segments, and the poisoned tile must still be solved
    (in the parent, on the same shared planes)."""

    @staticmethod
    def _one_fault_per_tile(width, height, step):
        mask = np.zeros((width, height), dtype=bool)
        mask[step // 2 :: step, step // 2 :: step] = True
        return mask

    def test_crashing_tile_worker_no_leak_bit_for_bit(self, registry, monkeypatch):
        from repro.core.safety import unsafe_fixpoint
        from repro.core.sharded import _CRASH_TILE_ENV, unsafe_fixpoint_sharded
        from repro.core.status import SafetyDefinition
        from repro.mesh import Mesh2D
        from repro.mesh.tiling import Tiling

        topo = Mesh2D(40, 40)
        faults = self._one_fault_per_tile(40, 40, 10)  # every tile active
        # Workers fork after setenv, so they inherit the crash hook; the
        # tile anchored at (0, 0) kills its worker with os._exit.
        monkeypatch.setenv(_CRASH_TILE_ENV, "0,0")
        before = _arena_segments()
        unsafe_s, _ = unsafe_fixpoint_sharded(
            topo,
            faults,
            SafetyDefinition.DEF_2B,
            tiling=Tiling(topo.shape, 10, 10),
            jobs=2,
            registry=registry,
        )
        assert _arena_segments() == before  # nothing leaked
        unsafe_g, _ = unsafe_fixpoint(topo, faults, SafetyDefinition.DEF_2B)
        assert np.array_equal(unsafe_g, unsafe_s)  # poison tile recovered
        # The registry replaced the broken pool and stays usable.
        rows, _ = run_cells(_square, [5, 6], 2, chunk_size=1, registry=registry)
        assert rows == [_square(5), _square(6)]
