"""Unit tests for trial orchestration and parameter sweeps."""

import os

import numpy as np
import pytest

from repro.analysis import CellFailure, run_trials, sweep, trial_rng, trial_rngs


def _draw(rng):
    """Module-level trial function so worker processes can pickle it."""
    return float(rng.random())


def _metric(value, rng):
    """Module-level metric function so worker processes can pickle it."""
    return {"double": 2.0 * value, "noise": float(rng.random())}


def _fragile_metric(value, rng):
    """Raises on value 13 — exercises graceful cell failure."""
    if value == 13:
        raise RuntimeError("unlucky value")
    return {"double": 2.0 * value}


def _poison_metric(value, rng):
    """Kills its worker process outright on value 13 (parallel only):
    os._exit bypasses exception handling, so the pool breaks."""
    if value == 13:
        os._exit(1)
    return {"double": 2.0 * value}


class TestTrialRngs:
    def test_count(self):
        assert len(trial_rngs(5, 42)) == 5

    def test_reproducible(self):
        a = [r.integers(1 << 30) for r in trial_rngs(4, 7)]
        b = [r.integers(1 << 30) for r in trial_rngs(4, 7)]
        assert a == b

    def test_independent_streams(self):
        draws = [r.integers(1 << 30) for r in trial_rngs(8, 7)]
        assert len(set(draws)) == 8

    def test_prefix_stability(self):
        # Requesting more trials must not change the earlier streams.
        a = [r.integers(1 << 30) for r in trial_rngs(3, 9)]
        b = [r.integers(1 << 30) for r in trial_rngs(6, 9)][:3]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            trial_rngs(0, 1)


class TestTrialRng:
    def test_matches_spawned_stream(self):
        # trial_rng(t, s, i) must be exactly the i-th of trial_rngs(t, s):
        # that identity is what makes parallel runs scheduling-independent.
        whole = [r.integers(1 << 30) for r in trial_rngs(5, 11)]
        each = [trial_rng(5, 11, i).integers(1 << 30) for i in range(5)]
        assert whole == each

    def test_index_validated(self):
        with pytest.raises(ValueError):
            trial_rng(3, 0, 3)
        with pytest.raises(ValueError):
            trial_rng(3, 0, -1)


class TestRunTrials:
    def test_collects_results(self):
        out = run_trials(lambda rng: float(rng.random()), trials=5, seed=3)
        assert len(out) == 5 and len(set(out)) == 5


class TestSweep:
    def test_aggregates_per_value(self):
        points = sweep(
            [1, 2, 3],
            lambda v, rng: {"double": 2 * v, "noise": rng.random()},
            trials=4,
            seed=0,
        )
        assert [p.value for p in points] == [1, 2, 3]
        assert points[1].metrics["double"].mean == 4.0
        assert points[0].metrics["noise"].n == 4

    def test_missing_keys_tolerated(self):
        def fn(v, rng):
            out = {"always": 1.0}
            if rng.random() < 0.5:
                out["sometimes"] = 2.0
            return out

        points = sweep([0], fn, trials=20, seed=5)
        m = points[0].metrics
        assert m["always"].n == 20
        assert 0 < m["sometimes"].n < 20

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            sweep([1], _metric, trials=0, seed=0)


class TestParallelHarness:
    def test_run_trials_jobs_identical_to_serial(self):
        serial = run_trials(_draw, trials=6, seed=13)
        parallel = run_trials(_draw, trials=6, seed=13, jobs=2)
        assert serial == parallel  # exact floats, in trial order

    def test_sweep_jobs_identical_to_serial(self):
        serial = sweep([1, 2, 3], _metric, trials=4, seed=9)
        parallel = sweep([1, 2, 3], _metric, trials=4, seed=9, jobs=2)
        assert serial == parallel  # Summary dataclasses compare exactly


class TestSweepFailures:
    def test_raising_cell_recorded_not_fatal(self):
        points = sweep([1, 13, 3], _fragile_metric, trials=3, seed=0)
        assert [p.value for p in points] == [1, 13, 3]
        assert points[0].failures == ()
        assert points[2].failures == ()
        assert points[0].metrics["double"].n == 3
        # the failing value has no samples, three structured failures
        assert points[1].metrics == {}
        assert len(points[1].failures) == 3
        for ti, failure in enumerate(points[1].failures):
            assert failure == CellFailure(
                value=13, trial=ti, error="RuntimeError: unlucky value"
            )

    def test_partial_failure_keeps_other_trials(self):
        def flaky(value, rng):
            if rng.random() < 0.5:
                raise ValueError("flaked")
            return {"ok": 1.0}

        points = sweep([0], flaky, trials=30, seed=4)
        kept = points[0].metrics.get("ok")
        assert kept is not None and 0 < kept.n < 30
        assert len(points[0].failures) == 30 - kept.n
        assert all(f.error == "ValueError: flaked" for f in points[0].failures)

    def test_failures_identical_serial_and_parallel(self):
        serial = sweep([1, 13, 3], _fragile_metric, trials=3, seed=9)
        parallel = sweep([1, 13, 3], _fragile_metric, trials=3, seed=9, jobs=2)
        assert serial == parallel

    def test_broken_pool_retried_and_reported(self):
        # One poison cell kills its worker; the sweep must resume on a
        # fresh pool, chalk the dead cell up as a failure, and finish
        # the healthy values normally.  chunk_size forces worker
        # isolation (the amortization estimate would run a sweep this
        # small in-parent, where os._exit would kill the test).
        points = sweep(
            [1, 13, 3], _poison_metric, trials=1, seed=0, jobs=2, chunk_size=1
        )
        assert [p.value for p in points] == [1, 13, 3]
        assert points[1].metrics == {}
        assert len(points[1].failures) == 1
        assert "BrokenProcessPool" in points[1].failures[0].error
        # both healthy values fully evaluated (no trials lost)
        assert points[0].metrics["double"].n == 1
        assert points[2].metrics["double"].n == 1
