"""Unit tests for the fault-density study."""

import pytest

from repro.analysis import density_study
from repro.core import SafetyDefinition
from repro.mesh import Mesh2D


@pytest.fixture(scope="module")
def points():
    return density_study(
        Mesh2D(24, 24), densities=[0.0, 0.02, 0.08, 0.2], trials=5, seed=3
    )


class TestDensityStudy:
    def test_point_per_density(self, points):
        assert [p.density for p in points] == [0.0, 0.02, 0.08, 0.2]
        assert points[1].f == round(0.02 * 576)

    def test_zero_density_is_clean(self, points):
        p0 = points[0]
        assert p0.largest_block.mean == 0.0
        assert p0.imprisoned_fraction.mean == 0.0
        assert p0.enabled_components.mean == 1.0
        assert p0.largest_enabled_fraction.mean == 1.0

    def test_largest_block_grows_with_density(self, points):
        sizes = [p.largest_block.mean for p in points]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[1]

    def test_imprisoned_fraction_grows(self, points):
        fracs = [p.imprisoned_fraction.mean for p in points]
        assert fracs[-1] >= fracs[1] >= fracs[0]

    def test_enabled_subgraph_fragments_at_high_density(self, points):
        assert points[-1].enabled_components.mean >= points[0].enabled_components.mean

    def test_freed_fraction_high_below_percolation(self, points):
        # Below the block-percolation transition (~10% density for
        # Definition 2b) phase 2 frees nearly everything; above it the
        # mesh fuses into one giant block and freeing collapses.
        low = [p for p in points if 0 < p.density <= 0.08]
        for p in low:
            assert p.freed_fraction.mean > 0.8
        assert points[-1].freed_fraction.mean <= points[1].freed_fraction.mean

    def test_density_validation(self):
        with pytest.raises(ValueError):
            density_study(Mesh2D(8, 8), densities=[1.5], trials=1)

    def test_definition_parameter(self):
        pts = density_study(
            Mesh2D(16, 16),
            densities=[0.05],
            trials=3,
            definition=SafetyDefinition.DEF_2A,
            seed=1,
        )
        assert pts[0].f == round(0.05 * 256)
