"""Unit tests for the Figure-5 reproduction driver."""

import math

import pytest

from repro.analysis import run_fig5
from repro.core import SafetyDefinition
from repro.mesh import Mesh2D, Torus2D


@pytest.fixture(scope="module")
def small_curve():
    # A scaled-down sweep keeps the test fast while exercising the
    # whole pipeline; benchmarks run the paper-sized version.
    return run_fig5(
        SafetyDefinition.DEF_2B,
        topology=Mesh2D(40, 40),
        f_values=[0, 10, 20, 40],
        trials=6,
        seed=99,
    )


class TestFig5Driver:
    def test_points_per_f_value(self, small_curve):
        assert [p.f for p in small_curve.points] == [0, 10, 20, 40]

    def test_zero_faults_zero_rounds(self, small_curve):
        p0 = small_curve.points[0]
        assert p0.rounds_fb.mean == 0.0
        assert p0.rounds_dr.mean == 0.0
        assert p0.num_blocks.mean == 0.0
        assert math.isnan(p0.enabled_ratio.mean)  # no reducible blocks

    def test_rounds_far_below_diameter(self, small_curve):
        # The paper's headline: rounds are much lower than the diameter.
        diameter = 78
        for p in small_curve.points:
            assert p.rounds_fb.mean < diameter / 4
            assert p.rounds_dr.mean < diameter / 4

    def test_enabled_ratio_high_at_low_density(self, small_curve):
        # "The average percentage ... stays very high, especially when
        # the number of faults is relatively low."
        p = small_curve.points[1]  # f=10 on 40x40
        assert p.enabled_ratio.mean > 0.9 or math.isnan(p.enabled_ratio.mean)

    def test_blocks_grow_with_f(self, small_curve):
        counts = [p.num_blocks.mean for p in small_curve.points]
        assert counts == sorted(counts)

    def test_table_rendering(self, small_curve):
        table = small_curve.as_table()
        assert "rounds(FB)" in table and "Definition 2b" in table
        assert str(small_curve.points[-1].f) in table

    def test_reproducible(self):
        kw = dict(
            topology=Mesh2D(20, 20), f_values=[8], trials=3, seed=123
        )
        a = run_fig5(SafetyDefinition.DEF_2A, **kw)
        b = run_fig5(SafetyDefinition.DEF_2A, **kw)
        pa, pb = a.points[0], b.points[0]
        assert pa.rounds_fb.mean == pb.rounds_fb.mean
        assert pa.num_blocks.mean == pb.num_blocks.mean
        ra, rb = pa.enabled_ratio.mean, pb.enabled_ratio.mean
        assert (math.isnan(ra) and math.isnan(rb)) or ra == rb

    def test_torus_supported(self):
        curve = run_fig5(
            SafetyDefinition.DEF_2B,
            topology=Torus2D(20, 20),
            f_values=[6],
            trials=3,
            seed=5,
        )
        assert curve.points[0].num_blocks.mean > 0

    def test_jobs_and_method_invisible(self):
        # Parallel scheduling and the frontier kernel must not change a
        # single aggregate: every (f, trial) cell reseeds from its grid
        # position and the kernels are property-tested identical.
        def same(a, b):
            # Exact equality, except nan == nan (f=0 has no reducible
            # blocks, so enabled_ratio aggregates zero samples).
            return a == b or (math.isnan(a) and math.isnan(b))

        kw = dict(topology=Mesh2D(20, 20), f_values=[0, 8], trials=3, seed=123)
        base = run_fig5(SafetyDefinition.DEF_2B, **kw)
        fields = ("rounds_fb", "rounds_dr", "enabled_ratio", "num_blocks", "num_regions")
        for variant in (
            run_fig5(SafetyDefinition.DEF_2B, jobs=2, **kw),
            run_fig5(SafetyDefinition.DEF_2B, method="frontier", **kw),
            run_fig5(SafetyDefinition.DEF_2B, method="dense", jobs=2, **kw),
        ):
            for pv, pb in zip(variant.points, base.points):
                assert pv.f == pb.f
                for name in fields:
                    sv, sb = getattr(pv, name), getattr(pb, name)
                    assert sv.n == sb.n
                    assert same(sv.mean, sb.mean) and same(sv.std, sb.std)
