"""The write-ahead log and snapshot store: framing, torn tails, atomicity.

Each WAL record is length-prefixed and CRC-checksummed; these tests pin
the replay semantics the recovery proof leans on — a torn *tail* is
silently discarded (it was never acknowledged), corruption *followed by
intact data* is a loud :class:`DurabilityError`, and snapshots are
atomic (a crash mid-write leaves the previous snapshot untouched).
"""

import json
import os
import struct

import pytest

from repro.errors import DurabilityError
from repro.service import CrashPlan, DeltaRecord, SimulatedCrash
from repro.service.wal import (
    CLEAN_MARKER,
    SNAPSHOT_FILE,
    WAL_FILE,
    SnapshotStore,
    WriteAheadLog,
    clear_clean_marker,
    list_state,
    read_clean_marker,
    write_clean_marker,
)


def _records(n, start_version=1):
    return [
        DeltaRecord(version=start_version + i, inject=((i, i),), repair=())
        for i in range(n)
    ]


class TestDeltaRecord:
    def test_payload_round_trip(self):
        record = DeltaRecord(
            version=7,
            inject=((3, 4), (1, 2)),
            repair=((5, 5),),
            client="c-1",
            seq=12,
            batch_index=1,
            batch_size=3,
        )
        again = DeltaRecord.from_payload(record.to_payload())
        assert again.version == 7
        assert again.inject == ((1, 2), (3, 4))  # canonicalized order
        assert again.repair == ((5, 5),)
        assert (again.client, again.seq) == ("c-1", 12)
        assert (again.batch_index, again.batch_size) == (1, 3)

    def test_anonymous_record_omits_idempotency_key(self):
        payload = DeltaRecord(version=1, inject=((0, 0),), repair=()).to_payload()
        body = json.loads(payload)
        assert "client" not in body and "seq" not in body and "batch" not in body

    def test_malformed_payloads_raise(self):
        with pytest.raises(DurabilityError):
            DeltaRecord.from_payload(b"\xff\xfe not json")
        with pytest.raises(DurabilityError):
            DeltaRecord.from_payload(b'{"no_version": true}')


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d) as wal:
            for record in _records(5):
                wal.append(record)
            assert wal.appended == 5
            assert wal.bytes_written > 0
        replayed = list(WriteAheadLog.replay(d))
        assert [r.version for r in replayed] == [1, 2, 3, 4, 5]
        assert replayed[2].inject == ((2, 2),)

    def test_replay_of_missing_or_empty_log(self, tmp_path):
        d = str(tmp_path)
        assert list(WriteAheadLog.replay(d)) == []
        WriteAheadLog(d).close()
        assert list(WriteAheadLog.replay(d)) == []

    @pytest.mark.parametrize("cut", [1, 4, 7, 9])
    def test_torn_tail_is_dropped_silently(self, tmp_path, cut):
        d = str(tmp_path)
        with WriteAheadLog(d) as wal:
            for record in _records(3):
                wal.append(record)
        path = os.path.join(d, WAL_FILE)
        data = open(path, "rb").read()
        # Cut somewhere inside the final record (header or payload).
        open(path, "wb").write(data[: len(data) - cut])
        replayed = list(WriteAheadLog.replay(d))
        assert [r.version for r in replayed] == [1, 2]

    def test_corruption_mid_log_raises(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d) as wal:
            for record in _records(3):
                wal.append(record)
        path = os.path.join(d, WAL_FILE)
        data = bytearray(open(path, "rb").read())
        data[12] ^= 0xFF  # flip a byte inside the first record's payload
        open(path, "wb").write(bytes(data))
        with pytest.raises(DurabilityError, match="checksum mismatch"):
            list(WriteAheadLog.replay(d))

    def test_absurd_length_header_raises(self, tmp_path):
        d = str(tmp_path)
        path = os.path.join(d, WAL_FILE)
        open(path, "wb").write(struct.pack("<II", 1 << 30, 0) + b"x" * 64)
        with pytest.raises(DurabilityError, match="claims"):
            list(WriteAheadLog.replay(d))

    def test_rotate_truncates(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d) as wal:
            for record in _records(3):
                wal.append(record)
            wal.rotate()
            wal.append(DeltaRecord(version=9, inject=((8, 8),), repair=()))
        replayed = list(WriteAheadLog.replay(d))
        assert [r.version for r in replayed] == [9]

    def test_fsync_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), fsync_every=0)
        wal = WriteAheadLog(str(tmp_path), fsync_every=2)
        for record in _records(5):
            wal.append(record)
        wal.close()
        assert len(list(WriteAheadLog.replay(str(tmp_path)))) == 5

    def test_crash_mid_append_tears_the_record(self, tmp_path):
        d = str(tmp_path)
        plan = CrashPlan("append.mid", occurrence=3)
        wal = WriteAheadLog(d, crash_hook=plan)
        wal.append(_records(1)[0])
        wal.append(_records(2)[1])
        with pytest.raises(SimulatedCrash):
            wal.append(_records(3)[2])
        wal.close()
        # The torn third record is on disk but fails its checksum.
        size = os.path.getsize(os.path.join(d, WAL_FILE))
        assert size > 0
        assert [r.version for r in WriteAheadLog.replay(d)] == [1, 2]


class TestSnapshotStore:
    STATE = {"version": 3, "faults": [[1, 2], [3, 4]], "clients": {}}

    def test_write_load_round_trip(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        nbytes = store.write(self.STATE)
        assert nbytes > 0
        assert store.load() == self.STATE

    def test_load_absent_returns_none(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).load() is None

    def test_checksum_mismatch_raises(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.write(self.STATE)
        path = os.path.join(str(tmp_path), SNAPSHOT_FILE)
        wrapper = json.load(open(path))
        wrapper["state"]["version"] = 999  # tamper without fixing the CRC
        json.dump(wrapper, open(path, "w"))
        with pytest.raises(DurabilityError, match="checksum"):
            store.load()

    def test_garbage_snapshot_raises(self, tmp_path):
        path = os.path.join(str(tmp_path), SNAPSHOT_FILE)
        open(path, "w").write("not json at all")
        with pytest.raises(DurabilityError, match="unreadable"):
            SnapshotStore(str(tmp_path)).load()

    @pytest.mark.parametrize("point", ["snapshot.pre", "snapshot.mid"])
    def test_crash_mid_write_keeps_previous_snapshot(self, tmp_path, point):
        d = str(tmp_path)
        store = SnapshotStore(d)
        store.write(self.STATE)
        crashing = SnapshotStore(d, crash_hook=CrashPlan(point))
        with pytest.raises(SimulatedCrash):
            crashing.write({"version": 99, "faults": [], "clients": {}})
        assert store.load() == self.STATE  # old snapshot intact

    def test_crash_before_rename_keeps_previous_snapshot(self, tmp_path):
        d = str(tmp_path)
        store = SnapshotStore(d)
        store.write(self.STATE)
        crashing = SnapshotStore(d, crash_hook=CrashPlan("snapshot.pre_rename"))
        with pytest.raises(SimulatedCrash):
            crashing.write({"version": 99, "faults": [], "clients": {}})
        assert store.load() == self.STATE


class TestMarkersAndListing:
    def test_clean_marker_round_trip(self, tmp_path):
        d = str(tmp_path)
        assert not read_clean_marker(d)
        write_clean_marker(d)
        assert read_clean_marker(d)
        clear_clean_marker(d)
        assert not read_clean_marker(d)
        clear_clean_marker(d)  # idempotent

    def test_list_state(self, tmp_path):
        d = str(tmp_path)
        assert list_state(d) == []
        wal = WriteAheadLog(d)
        assert list_state(d) == []  # empty log = fresh directory
        wal.append(_records(1)[0])
        wal.close()
        assert list_state(d) == [WAL_FILE]
        SnapshotStore(d).write({"version": 1})
        write_clean_marker(d)
        assert list_state(d) == [CLEAN_MARKER, SNAPSHOT_FILE, WAL_FILE]
        assert list_state(str(tmp_path / "nope")) == []
