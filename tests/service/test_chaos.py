"""The chaos proxy and the retrying client: at-least-once delivery on a
hostile wire, exactly-once application at the service.

The proxy drops, truncates, splits, delays and duplicates NDJSON request
frames between a :class:`ServiceClient` and a :class:`LabelingServer`.
The client's retry/reconnect loop plus the server's per-client
high-water-mark dedup must converge every stream to exactly-once
application — proven here by the engine version (which bumps exactly
once per effective delta) and the bit-for-bit scratch check.
"""

import socket as socket_module
import threading

import pytest

from repro.errors import ServiceError
from repro.mesh import Mesh2D
from repro.service import (
    ChaosProxy,
    LabelingServer,
    LabelingService,
    ServiceClient,
)


def _serve(service, **kwargs):
    server = LabelingServer(service, conn_timeout=5.0, **kwargs)
    thread = server.serve_in_thread()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    thread.join(timeout=5)
    server.close()


class TestChaosProxy:
    def test_transparent_relay(self):
        service = LabelingService(Mesh2D(12, 12))
        server, thread = _serve(service)
        try:
            with ChaosProxy(server.address, seed=1) as proxy:
                host, port = proxy.address
                with ServiceClient.connect_tcp(host, port) as client:
                    assert client.ping() == 0
                    client.update(inject=[(2, 2)])
                    assert client.query_nodes([(2, 2)])[0]["status"] == "faulty"
                assert proxy.stats["frames"] >= 3
        finally:
            _stop(server, thread)

    def test_chaos_is_seeded_deterministic(self):
        a = ChaosProxy(("127.0.0.1", 1), seed=42, drop_prob=0.5)
        b = ChaosProxy(("127.0.0.1", 1), seed=42, drop_prob=0.5)
        try:
            rolls_a = [float(a._rng.random()) for _ in range(16)]
            rolls_b = [float(b._rng.random()) for _ in range(16)]
            assert rolls_a == rolls_b
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_updates_converge_exactly_once_under_chaos(self, seed):
        service = LabelingService(Mesh2D(16, 16))
        server, thread = _serve(service)
        try:
            with ChaosProxy(
                server.address,
                seed=seed,
                drop_prob=0.15,
                truncate_prob=0.1,
                split_prob=0.2,
                dup_prob=0.25,
                delay_prob=0.1,
                max_delay_s=0.005,
            ) as proxy:
                host, port = proxy.address
                client = ServiceClient.connect_tcp(
                    host, port, retries=8, backoff=0.01
                )
                applied = 0
                with client:
                    for i in range(12):
                        inject = [(i % 14, (3 * i) % 14)]
                        delta = client.update(inject=inject)
                        applied += 1 if delta["injected"] else 0
                # Exactly-once: each effective update bumped the version
                # exactly once, no matter how many frames the wire
                # carried or how many retries the client issued.
                assert service.version == applied
                assert service.verify_against_scratch()
                assert proxy.stats["frames"] >= 12
        finally:
            _stop(server, thread)

    def test_batch_updates_under_duplication(self):
        service = LabelingService(Mesh2D(16, 16))
        server, thread = _serve(service)
        try:
            with ChaosProxy(server.address, seed=3, dup_prob=1.0) as proxy:
                host, port = proxy.address
                with ServiceClient.connect_tcp(
                    host, port, retries=4, backoff=0.01
                ) as client:
                    deltas = client.update_batch(
                        [([(1, 1)], []), ([(2, 2)], []), ([], [(1, 1)])]
                    )
                    assert [d["version"] for d in deltas] == [1, 2, 3]
                    # Every frame carried a seq, so every frame doubled.
                    assert proxy.stats["duplicated"] >= 1
            assert service.version == 3
            assert sorted(service.faults.cells) == [(2, 2)]
            assert service.verify_against_scratch()
        finally:
            _stop(server, thread)


class TestClientRetry:
    def test_reconnects_after_server_restart_same_state(self):
        """A retrying client rides over a connection loss transparently."""
        service = LabelingService(Mesh2D(12, 12))
        server, thread = _serve(service)
        host, port = server.address
        client = ServiceClient.connect_tcp(host, port, retries=4, backoff=0.01)
        try:
            client.update(inject=[(3, 3)])
            # Kill the first connection under the client's feet.
            client._sock.shutdown(socket_module.SHUT_RDWR)
            delta = client.update(inject=[(4, 4)])
            assert delta["injected"] == [[4, 4]]
            assert service.version == 2
        finally:
            client.close()
            _stop(server, thread)

    def test_no_retries_surfaces_transport_error_with_op(self):
        service = LabelingService(Mesh2D(8, 8))
        server, thread = _serve(service)
        host, port = server.address
        client = ServiceClient.connect_tcp(host, port, retries=0)
        try:
            client.ping()
            client._sock.shutdown(socket_module.SHUT_RDWR)
            with pytest.raises(ServiceError, match="update"):
                client.update(inject=[(1, 1)])
        finally:
            client.close()
            _stop(server, thread)

    def test_retry_emits_telemetry(self, tmp_path):
        from repro.obs import JSONLSink, Telemetry
        from repro.obs.summarize import summarize_trace

        trace = str(tmp_path / "retries.jsonl")
        telemetry = Telemetry(sinks=[JSONLSink(trace)])
        service = LabelingService(Mesh2D(8, 8))
        server, thread = _serve(service)
        host, port = server.address
        client = ServiceClient.connect_tcp(
            host, port, retries=3, backoff=0.01, telemetry=telemetry
        )
        try:
            client._sock.shutdown(socket_module.SHUT_RDWR)  # force a transport failure
            client.update(inject=[(2, 2)])
        finally:
            client.close()
            _stop(server, thread)
            telemetry.close()
        summary = summarize_trace(trace)
        assert summary.durability["request_retry"]["count"] >= 1.0

    def test_duplicate_update_not_reapplied_without_proxy(self):
        """Replaying the same seq over a raw socket dedups server-side."""
        import json
        import socket as socket_module

        service = LabelingService(Mesh2D(8, 8))
        server, thread = _serve(service)
        host, port = server.address
        try:
            sock = socket_module.create_connection((host, port), timeout=5)
            rfile = sock.makefile("rb")
            payload = json.dumps(
                {
                    "op": "update",
                    "inject": [[1, 1]],
                    "client": "dup-test",
                    "seq": 1,
                }
            ).encode() + b"\n"
            sock.sendall(payload)
            first = json.loads(rfile.readline())
            sock.sendall(payload)  # verbatim retry
            second = json.loads(rfile.readline())
            sock.close()
            assert first["ok"] and second["ok"]
            assert second["duplicate"] is True
            assert second["version"] == first["version"] == 1
            assert second["delta"] == first["delta"]
            assert service.version == 1
        finally:
            _stop(server, thread)
