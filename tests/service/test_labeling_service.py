"""The in-process service API: instrumented updates over the engine.

Pins the service's three contracts: answers equal from-scratch labeling
(delegated to the engine, spot-checked here), ``stats()`` reports the
real operational counters, and telemetry artefacts produced by a traced
service validate against the event schemas and summarize into per-op
percentiles.
"""

import numpy as np
import pytest

from repro.core import SafetyDefinition, label_mesh
from repro.core.status import NodeStatus
from repro.faults import FaultSet
from repro.mesh import Mesh2D, Torus2D
from repro.obs import JSONLSink, MetricsRegistry, Telemetry
from repro.obs.events import validate_jsonl
from repro.obs.summarize import latency_percentiles
from repro.service import LabelingService

FAULTS = [(3, 3), (3, 4), (4, 3)]


def test_initial_faults_are_absorbed():
    service = LabelingService(Mesh2D(16, 16), faults=FAULTS)
    assert service.engine.num_faults == 3
    assert service.version == 1
    assert service.verify_against_scratch()


def test_update_inject_and_repair_round_trip():
    service = LabelingService(Mesh2D(16, 16), faults=FAULTS)
    before = service.engine.labels
    delta = service.update(inject=[(10, 10)])
    assert delta.injected == ((10, 10),)
    assert service.status_of((10, 10)) is NodeStatus.FAULTY
    delta = service.update(repair=[(10, 10)])
    assert delta.repaired == ((10, 10),)
    after = service.engine.labels
    assert np.array_equal(before.unsafe, after.unsafe)
    assert np.array_equal(before.enabled, after.enabled)
    assert service.verify_against_scratch()


def test_snapshot_equals_label_mesh():
    service = LabelingService(Mesh2D(20, 20), SafetyDefinition.DEF_2A, faults=FAULTS)
    snap = service.snapshot()
    scratch = label_mesh(
        Mesh2D(20, 20),
        FaultSet.from_coords((20, 20), FAULTS),
        SafetyDefinition.DEF_2A,
    )
    assert np.array_equal(snap.labels.unsafe, scratch.labels.unsafe)
    assert snap.blocks == scratch.blocks
    assert snap.regions == scratch.regions


def test_torus_is_supported():
    service = LabelingService(Torus2D(12, 12), faults=[(0, 0), (11, 0), (0, 11)])
    assert service.verify_against_scratch()
    service.update(repair=[(11, 0)])
    assert service.verify_against_scratch()


def test_stats_reports_real_counters():
    service = LabelingService(Mesh2D(16, 16), faults=FAULTS)
    service.update(inject=[(10, 10)])
    service.update(repair=[(10, 10)])
    stats = service.stats()
    assert stats["topology"] == {"kind": "mesh", "width": 16, "height": 16}
    assert stats["definition"] == "2b"
    assert stats["faults"] == 3
    assert stats["updates"] == 3
    assert stats["version"] == service.version
    assert stats["blocks"] == service.engine.num_blocks
    assert stats["cache"]["entries"] >= 1
    lat = stats["update_latency_us"]
    assert lat["count"] == 3.0
    assert 0 < lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]


def test_latency_window_is_bounded():
    service = LabelingService(Mesh2D(16, 16), latency_window=4)
    for _ in range(10):
        service.update()
    assert service.stats()["update_latency_us"]["count"] == 4.0


def test_traced_service_artefacts_validate(tmp_path):
    trace = tmp_path / "service.jsonl"
    metrics = MetricsRegistry()
    telemetry = Telemetry(sinks=[JSONLSink(str(trace))], metrics=metrics)
    service = LabelingService(Mesh2D(16, 16), faults=FAULTS, telemetry=telemetry)
    service.update(inject=[(9, 9)])
    service.update(repair=[(9, 9)])
    telemetry.close()
    assert validate_jsonl(str(trace)) == 3  # initial build + 2 deltas
    hists = metrics.snapshot()["histograms"]
    latency = [v for k, v in hists.items() if "service_update_latency_us" in k]
    assert latency and latency[0]["count"] == 3


def test_latency_percentiles_nearest_rank():
    samples = [float(v) for v in range(1, 101)]
    pct = latency_percentiles(samples, errors=2)
    assert pct == {
        "count": 100.0,
        "errors": 2.0,
        "p50": 50.0,
        "p90": 90.0,
        "p99": 99.0,
        "max": 100.0,
    }
    assert latency_percentiles([])["count"] == 0.0


def test_latency_percentiles_empty_window_is_all_zeros():
    pct = latency_percentiles([])
    assert pct == {
        "count": 0.0, "errors": 0.0,
        "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
    }


def test_latency_percentiles_single_sample_saturates_every_rank():
    pct = latency_percentiles([42.0])
    assert pct["p50"] == pct["p90"] == pct["p99"] == pct["max"] == 42.0
    assert pct["count"] == 1.0


def test_latency_percentiles_all_error_op_keeps_error_count():
    # An op whose every request failed has no latency samples but must
    # still report its errors.
    pct = latency_percentiles([], errors=7)
    assert pct["count"] == 0.0 and pct["errors"] == 7.0
    assert pct["p99"] == 0.0 and pct["max"] == 0.0


def test_stats_carries_the_slo_evaluation():
    from repro.obs import SLOConfig

    service = LabelingService(
        Mesh2D(16, 16),
        faults=FAULTS,
        slo=SLOConfig(window=8, availability_target=0.5),
    )
    for _ in range(3):
        service.record_request(True, 100.0)
    service.record_request(False, 0.0)
    slo = service.stats()["slo"]
    assert slo["count"] == 4 and slo["errors"] == 1
    assert slo["config"]["window"] == 8
    assert slo["availability_ok"] is True  # 0.75 >= 0.5
    assert slo["total"] == 4
