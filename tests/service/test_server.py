"""The NDJSON protocol and the socket servers behind ``repro serve``.

``handle_request`` is tested in-process (the protocol has exactly one
implementation, shared by the socket front end), then full TCP and
Unix-domain round trips run through :class:`ServiceClient`, including
error responses, the shutdown op, and telemetry artefacts of a traced
server.
"""

import json
import socket as socket_module
import threading

import pytest

from repro.mesh import Mesh2D
from repro.obs import JSONLSink, Telemetry
from repro.obs.events import validate_jsonl
from repro.obs.summarize import summarize_trace
from repro.service import (
    LabelingServer,
    LabelingService,
    ServiceClient,
    handle_request,
)

FAULTS = [(3, 3), (3, 4), (4, 3)]


@pytest.fixture()
def service():
    return LabelingService(Mesh2D(16, 16), faults=FAULTS)


class TestHandleRequest:
    def test_ping(self, service):
        response, shutdown = handle_request(service, {"op": "ping"})
        assert response == {"ok": True, "version": 1}
        assert not shutdown

    def test_update_returns_delta(self, service):
        response, _ = handle_request(
            service, {"op": "update", "inject": [[10, 10]]}
        )
        assert response["ok"]
        assert response["delta"]["injected"] == [[10, 10]]
        assert response["version"] == 2
        assert json.loads(json.dumps(response)) == response  # JSON-safe

    def test_query_coords(self, service):
        response, _ = handle_request(
            service, {"op": "query", "coords": [[3, 3], [0, 0]]}
        )
        assert response["nodes"][0]["status"] == "faulty"
        assert response["nodes"][1] == {
            "coord": [0, 0], "status": "safe", "enabled": True,
        }

    def test_query_blocks_and_regions(self, service):
        blocks, _ = handle_request(service, {"op": "query", "what": "blocks"})
        assert blocks["blocks"][0]["origin"] == [3, 3]
        regions, _ = handle_request(service, {"op": "query", "what": "regions"})
        assert regions["regions"][0]["faults"] == 3

    def test_snapshot(self, service):
        response, _ = handle_request(service, {"op": "snapshot"})
        assert response["summary"]["f"] == 3
        assert len(response["blocks"]) == response["summary"]["num_blocks"]
        assert json.loads(json.dumps(response)) == response

    def test_stats(self, service):
        response, _ = handle_request(service, {"op": "stats"})
        assert response["stats"]["faults"] == 3

    def test_shutdown_op(self, service):
        response, shutdown = handle_request(service, {"op": "shutdown"})
        assert response["ok"] and shutdown

    @pytest.mark.parametrize(
        "request_obj, error_type",
        [
            ({"op": "nope"}, "ServiceError"),
            ({}, "ServiceError"),
            ({"op": 7}, "ServiceError"),
            ({"op": "update", "inject": [[1, 2, 3]]}, "ServiceError"),
            ({"op": "update", "inject": [[1.5, 2]]}, "ServiceError"),
            ({"op": "update", "inject": "nope"}, "ServiceError"),
            ({"op": "update", "inject": [[99, 0]]}, "TopologyError"),
            ({"op": "update", "inject": [[1, 1]], "repair": [[1, 1]]},
             "FaultModelError"),
            ({"op": "query"}, "ServiceError"),
            ({"op": "query", "what": "polygons"}, "ServiceError"),
        ],
    )
    def test_errors_become_responses(self, service, request_obj, error_type):
        response, shutdown = handle_request(service, request_obj)
        assert response["ok"] is False
        assert response["error_type"] == error_type
        assert not shutdown

    def test_errors_do_not_corrupt_state(self, service):
        handle_request(service, {"op": "update", "inject": [[99, 0]]})
        assert service.verify_against_scratch()

    def test_batch_update_returns_per_delta_versions(self, service):
        response, _ = handle_request(
            service,
            {
                "op": "update",
                "batch": [
                    {"inject": [[10, 10]]},
                    {"inject": [[11, 11]]},
                    {"repair": [[10, 10]]},
                ],
            },
        )
        assert response["ok"]
        assert [d["version"] for d in response["deltas"]] == [2, 3, 4]
        assert response["deltas"][0]["injected"] == [[10, 10]]
        assert response["deltas"][2]["repaired"] == [[10, 10]]
        assert response["version"] == 4
        assert json.loads(json.dumps(response)) == response

    def test_empty_batch_is_a_noop(self, service):
        response, _ = handle_request(service, {"op": "update", "batch": []})
        assert response["ok"] and response["deltas"] == []
        assert response["version"] == 1

    def test_malformed_batch_rejected(self, service):
        response, _ = handle_request(
            service, {"op": "update", "batch": [17]}
        )
        assert response["ok"] is False
        assert response["error_type"] == "ServiceError"

    def test_idempotency_key_dedups(self, service):
        request = {
            "op": "update", "inject": [[9, 9]], "client": "c", "seq": 1,
        }
        first, _ = handle_request(service, request)
        second, _ = handle_request(service, request)
        assert second["duplicate"] is True
        assert second["version"] == first["version"]
        assert second["delta"] == first["delta"]
        assert service.version == first["version"]

    def test_seq_echoed_even_on_errors(self, service):
        response, _ = handle_request(
            service, {"op": "nope", "client": "c", "seq": 5}
        )
        assert response["ok"] is False
        assert response["seq"] == 5

    @pytest.mark.parametrize(
        "request_obj",
        [
            {"op": "update", "client": 7, "seq": 1},
            {"op": "update", "client": "c", "seq": "one"},
            {"op": "update", "client": "c", "seq": True},
            {"op": "update", "client": "c"},  # seq missing
        ],
    )
    def test_bad_idempotency_key_rejected(self, service, request_obj):
        response, _ = handle_request(service, request_obj)
        assert response["ok"] is False
        assert response["error_type"] == "ServiceError"

    def test_request_events_are_emitted(self, service, tmp_path):
        trace = tmp_path / "requests.jsonl"
        telemetry = Telemetry(sinks=[JSONLSink(str(trace))])
        handle_request(service, {"op": "ping"}, telemetry=telemetry)
        handle_request(service, {"op": "nope"}, telemetry=telemetry)
        telemetry.close()
        assert validate_jsonl(str(trace)) == 2
        summary = summarize_trace(str(trace))
        assert summary.service_latency["ping"]["count"] == 1.0
        assert summary.service_latency["nope"]["errors"] == 1.0


def _with_server(server, fn):
    thread = server.serve_in_thread()
    try:
        return fn()
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.close()


class TestSocketRoundTrips:
    def test_tcp_round_trip(self, service):
        server = LabelingServer(service)  # ephemeral port
        host, port = server.address

        def talk():
            with ServiceClient.connect_tcp(host, port) as client:
                assert client.ping() == 1
                delta = client.update(inject=[(10, 10)])
                assert delta["injected"] == [[10, 10]]
                nodes = client.query_nodes([(10, 10)])
                assert nodes[0]["status"] == "faulty"
                assert client.query_blocks()
                assert client.query_regions()
                assert client.snapshot()["summary"]["f"] == 4
                assert client.stats()["updates"] == 2
                response = client.request({"op": "nope"})
                assert response["ok"] is False
                assert response["error_type"] == "ServiceError"

        _with_server(server, talk)
        assert server.requests_served >= 8

    def test_unix_round_trip(self, service, tmp_path):
        if not hasattr(socket_module, "AF_UNIX"):
            pytest.skip("no unix sockets on this platform")
        path = str(tmp_path / "repro.sock")
        server = LabelingServer(service, unix_path=path)

        def talk():
            with ServiceClient.connect_unix(path) as client:
                assert client.ping() == 1
                client.update(inject=[(12, 12)], repair=[(3, 3)])
                assert client.stats()["faults"] == 3

        _with_server(server, talk)

    def test_malformed_line_gets_error_response(self, service):
        server = LabelingServer(service)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                sock.sendall(b"this is not json\n")
                line = sock.makefile("rb").readline()
                response = json.loads(line)
                assert response["ok"] is False
                assert "not JSON" in response["error"]
            finally:
                sock.close()

        _with_server(server, talk)

    def test_shutdown_op_stops_the_server(self, service):
        server = LabelingServer(service)
        host, port = server.address
        thread = server.serve_in_thread()
        with ServiceClient.connect_tcp(host, port) as client:
            client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.close()

    def test_max_requests_bounds_the_server(self, service):
        server = LabelingServer(service, max_requests=2)
        host, port = server.address
        thread = server.serve_in_thread()
        with ServiceClient.connect_tcp(host, port) as client:
            client.ping()
            client.ping()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert server.requests_served == 2
        server.close()

    def test_concurrent_clients_are_serialized(self, service):
        server = LabelingServer(service)
        host, port = server.address

        def talk():
            errors = []

            def worker(cell):
                try:
                    with ServiceClient.connect_tcp(host, port) as client:
                        client.update(inject=[cell])
                        client.update(repair=[cell])
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=((8 + i, 8),))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert not errors

        _with_server(server, talk)
        assert service.verify_against_scratch()
        assert service.engine.num_faults == len(FAULTS)

    def test_batch_round_trip(self, service):
        server = LabelingServer(service)
        host, port = server.address

        def talk():
            with ServiceClient.connect_tcp(host, port) as client:
                deltas = client.update_batch(
                    [([(10, 10)], []), ([(11, 11)], []), ([], [(10, 10)])]
                )
                assert len(deltas) == 3
                assert deltas[-1]["version"] == service.version

        _with_server(server, talk)
        assert service.verify_against_scratch()


class TestServerHardening:
    def test_oversized_frame_gets_structured_error(self, service):
        server = LabelingServer(service, max_frame=256)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                rfile = sock.makefile("rb")
                sock.sendall(b'{"op": "ping", "pad": "' + b"x" * 600 + b'"}\n')
                response = json.loads(rfile.readline())
                assert response["ok"] is False
                assert "exceeds" in response["error"]
                assert response["error_type"] == "ServiceError"
                # The connection survives: the oversized line was drained.
                sock.sendall(b'{"op": "ping"}\n')
                assert json.loads(rfile.readline())["ok"] is True
            finally:
                sock.close()

        _with_server(server, talk)

    def test_non_utf8_frame_gets_structured_error(self, service):
        server = LabelingServer(service)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                rfile = sock.makefile("rb")
                sock.sendall(b'{"op": "ping", "x": "\xff\xfe"}\n')
                response = json.loads(rfile.readline())
                assert response["ok"] is False
                assert "not UTF-8" in response["error"]
                # The connection thread survived the bad frame.
                sock.sendall(b'{"op": "ping"}\n')
                assert json.loads(rfile.readline())["ok"] is True
            finally:
                sock.close()

        _with_server(server, talk)

    def test_conn_timeout_reaps_idle_connections(self, service):
        server = LabelingServer(service, conn_timeout=0.2)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                # Say nothing; the server must hang up on its own.
                line = sock.makefile("rb").readline()
                assert line == b""
            finally:
                sock.close()

        _with_server(server, talk)

    def test_overload_sheds_with_retryable_error(self, service):
        server = LabelingServer(service, max_inflight=1)
        host, port = server.address
        thread = server.serve_in_thread()
        release = threading.Event()
        entered = threading.Event()
        original_apply = service.apply_batch

        def slow_apply(*args, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return original_apply(*args, **kwargs)

        service.apply_batch = slow_apply
        try:
            blocker = ServiceClient.connect_tcp(host, port, retries=0)
            prober = ServiceClient.connect_tcp(host, port, retries=0)
            slow = threading.Thread(
                target=lambda: blocker.request(
                    {"op": "update", "inject": [[12, 12]]}
                ),
                daemon=True,
            )
            slow.start()
            assert entered.wait(timeout=5)
            response = prober.request({"op": "ping"})
            assert response["ok"] is False
            assert response["error_type"] == "ServiceOverloadedError"
            assert response["retryable"] is True
            release.set()
            slow.join(timeout=5)
            assert prober.ping() >= 1  # slot freed, service healthy again
            blocker.close()
            prober.close()
        finally:
            service.apply_batch = original_apply
            release.set()
            server.shutdown()
            thread.join(timeout=5)
            server.close()

    def test_shutdown_update_race_never_yields_partial_frames(self, service):
        """Satellite: concurrent updates + shutdown — every client gets a
        complete JSON response or a clean connection-closed EOF."""
        server = LabelingServer(service)
        host, port = server.address
        thread = server.serve_in_thread()
        failures = []
        barrier = threading.Barrier(6)

        def updater(i):
            try:
                barrier.wait(timeout=5)
                sock = socket_module.create_connection((host, port), timeout=5)
                rfile = sock.makefile("rb")
                for n in range(20):
                    sock.sendall(
                        json.dumps(
                            {"op": "update", "inject": [[8 + i, 8 + n % 4]],
                             "repair": []}
                        ).encode() + b"\n"
                    )
                    line = rfile.readline()
                    if line == b"":
                        return  # clean close: fine during shutdown
                    # Any returned line must be one complete JSON object.
                    response = json.loads(line)
                    assert "ok" in response
                sock.close()
            except (ConnectionError, OSError):
                pass  # clean connection-level close: acceptable
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        def stopper():
            try:
                barrier.wait(timeout=5)
                with ServiceClient.connect_tcp(host, port, retries=0) as c:
                    c.shutdown()
            except Exception:
                pass

        threads = [
            threading.Thread(target=updater, args=(i,)) for i in range(5)
        ] + [threading.Thread(target=stopper)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        thread.join(timeout=5)
        server.close()
        assert not failures
        assert service.verify_against_scratch()

    def test_drain_finalizes_durable_service(self, tmp_path):
        from repro.service import list_state
        from repro.service.wal import read_clean_marker

        durable = LabelingService(
            Mesh2D(16, 16), wal_dir=str(tmp_path), snapshot_every=2
        )
        server = LabelingServer(durable)
        host, port = server.address
        thread = server.serve_in_thread()
        with ServiceClient.connect_tcp(host, port) as client:
            client.update(inject=[(5, 5)])
            client.update(inject=[(6, 6)])
        assert server.drain(timeout=5)
        server.close()
        thread.join(timeout=5)
        assert read_clean_marker(str(tmp_path))
        assert "snapshot.json" in list_state(str(tmp_path))


class TestRequestAccounting:
    """Every answered *and* rejected request lands in the
    ``service_requests`` counter family and the service's SLO window."""

    def _traced_server(self, service, **kwargs):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        telemetry = Telemetry(metrics=registry)
        server = LabelingServer(service, telemetry=telemetry, **kwargs)
        return server, registry

    def test_dispatch_counts_ok_and_error_outcomes(self, service):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        telemetry = Telemetry(metrics=registry)
        handle_request(service, {"op": "ping"}, telemetry=telemetry)
        handle_request(service, {"op": "nope"}, telemetry=telemetry)
        counters = registry.snapshot()["counters"]
        assert counters['service_requests{op="ping",outcome="ok"}'] == 1
        assert counters['service_requests{op="nope",outcome="error"}'] == 1

    def test_dispatch_feeds_the_slo_window(self, service):
        handle_request(service, {"op": "ping"})
        handle_request(service, {"op": "nope"})
        slo = service.stats()["slo"]
        assert slo["count"] == 2 and slo["errors"] == 1

    def test_oversized_frame_counted_as_rejection(self, service):
        server, registry = self._traced_server(service, max_frame=128)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                rfile = sock.makefile("rb")
                sock.sendall(b'{"op": "ping", "pad": "' + b"x" * 400 + b'"}\n')
                assert json.loads(rfile.readline())["ok"] is False
            finally:
                sock.close()

        _with_server(server, talk)
        counters = registry.snapshot()["counters"]
        assert counters['service_requests{op="?",outcome="oversized"}'] == 1
        assert service.stats()["slo"]["errors"] >= 1

    def test_non_utf8_frame_counted_as_rejection(self, service):
        server, registry = self._traced_server(service)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                rfile = sock.makefile("rb")
                sock.sendall(b'{"op": "ping", "x": "\xff\xfe"}\n')
                assert json.loads(rfile.readline())["ok"] is False
            finally:
                sock.close()

        _with_server(server, talk)
        counters = registry.snapshot()["counters"]
        assert counters['service_requests{op="?",outcome="not_utf8"}'] == 1

    def test_connection_deadline_counted_as_rejection(self, service):
        server, registry = self._traced_server(service, conn_timeout=0.2)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                assert sock.makefile("rb").readline() == b""
            finally:
                sock.close()

        _with_server(server, talk)
        counters = registry.snapshot()["counters"]
        assert counters['service_requests{op="?",outcome="deadline"}'] == 1
        assert service.stats()["slo"]["errors"] >= 1

    def test_load_shed_counted_as_rejection_with_op(self, service):
        server, registry = self._traced_server(service, max_inflight=1)
        host, port = server.address
        thread = server.serve_in_thread()
        release = threading.Event()
        entered = threading.Event()
        original_apply = service.apply_batch

        def slow_apply(*args, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return original_apply(*args, **kwargs)

        service.apply_batch = slow_apply
        try:
            blocker = ServiceClient.connect_tcp(host, port, retries=0)
            prober = ServiceClient.connect_tcp(host, port, retries=0)
            slow = threading.Thread(
                target=lambda: blocker.request(
                    {"op": "update", "inject": [[12, 12]]}
                ),
                daemon=True,
            )
            slow.start()
            assert entered.wait(timeout=5)
            response = prober.request({"op": "ping"})
            assert response["error_type"] == "ServiceOverloadedError"
            release.set()
            slow.join(timeout=5)
            blocker.close()
            prober.close()
        finally:
            service.apply_batch = original_apply
            release.set()
            server.shutdown()
            thread.join(timeout=5)
            server.close()
        counters = registry.snapshot()["counters"]
        assert counters['service_requests{op="ping",outcome="overloaded"}'] == 1

    def test_rejection_events_reach_the_summary(self, service, tmp_path):
        """Rejections emit schema-valid ``service_request`` events the
        offline summarize SLO grades alongside dispatched requests."""
        trace = tmp_path / "t.jsonl"
        telemetry = Telemetry(sinks=[JSONLSink(str(trace))])
        server = LabelingServer(service, telemetry=telemetry, max_frame=128)
        host, port = server.address

        def talk():
            sock = socket_module.create_connection((host, port), timeout=5)
            try:
                rfile = sock.makefile("rb")
                sock.sendall(b'{"op": "ping", "pad": "' + b"y" * 400 + b'"}\n')
                rfile.readline()
                sock.sendall(b'{"op": "ping"}\n')
                rfile.readline()
            finally:
                sock.close()

        _with_server(server, talk)
        telemetry.close()
        assert validate_jsonl(str(trace)) >= 2
        summary = summarize_trace(str(trace))
        assert summary.slo is not None
        assert summary.slo["errors"] >= 1
        assert summary.service_latency["?"]["errors"] >= 1.0
