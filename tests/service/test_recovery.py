"""Recovery replay: snapshot + WAL tail → bit-for-bit verified state.

Pins the recovery contract end to end through
:func:`repro.service.recovery.recover_state` and
:meth:`LabelingService.recover`: version assertions per replayed record,
snapshot/WAL interleavings around crashes, client high-water-mark
reconstruction (complete batches only), and the topology/definition
cross-checks that keep a WAL directory from being replayed against the
wrong fabric.
"""

import pytest

from repro.core.status import SafetyDefinition
from repro.errors import DurabilityError
from repro.mesh import Mesh2D, Torus2D
from repro.service import (
    CrashPlan,
    DeltaRecord,
    LabelingService,
    SimulatedCrash,
    WriteAheadLog,
)
from repro.service.recovery import recover_state

MESH = Mesh2D(16, 16)


def _durable(tmp_path, **kwargs):
    return LabelingService(MESH, wal_dir=str(tmp_path), **kwargs)


class TestRecoverState:
    def test_wal_only_recovery(self, tmp_path):
        svc = _durable(tmp_path)
        svc.update(inject=[(1, 1), (2, 2)])
        svc.update(inject=[(3, 3)])
        svc.update(repair=[(2, 2)])
        rec = recover_state(
            str(tmp_path), topology=MESH, definition=SafetyDefinition.DEF_2B
        )
        assert rec.engine.version == svc.version == 3
        assert sorted(rec.engine.faults.cells) == [(1, 1), (3, 3)]
        assert rec.verified and rec.replayed == 3 and not rec.clean

    def test_snapshot_plus_tail(self, tmp_path):
        svc = _durable(tmp_path, snapshot_every=2)
        for i in range(7):
            svc.update(inject=[(i, 0)])
        rec = recover_state(str(tmp_path))
        assert rec.snapshot_version >= 2
        assert rec.engine.version == 7
        assert len(rec.engine.faults.cells) == 7
        assert rec.verified

    def test_clean_marker_reported(self, tmp_path):
        svc = _durable(tmp_path, snapshot_every=1)
        svc.update(inject=[(5, 5)])
        svc.finalize()
        assert recover_state(str(tmp_path)).clean
        svc2 = LabelingService.recover(str(tmp_path))
        # Recovering takes ownership: the marker is cleared again.
        assert not recover_state(
            str(tmp_path), topology=MESH, definition=SafetyDefinition.DEF_2B
        ).clean
        svc2.finalize()

    def test_no_snapshot_needs_topology(self, tmp_path):
        svc = _durable(tmp_path)
        svc.update(inject=[(1, 1)])
        with pytest.raises(DurabilityError, match="topology"):
            recover_state(str(tmp_path))

    def test_topology_mismatch_raises(self, tmp_path):
        svc = _durable(tmp_path, snapshot_every=1)
        svc.update(inject=[(1, 1)])
        with pytest.raises(DurabilityError, match="not the requested"):
            recover_state(str(tmp_path), topology=Mesh2D(8, 8))
        with pytest.raises(DurabilityError, match="not the requested"):
            recover_state(str(tmp_path), topology=Torus2D(16, 16))

    def test_definition_mismatch_raises(self, tmp_path):
        svc = _durable(tmp_path, snapshot_every=1)
        svc.update(inject=[(1, 1)])
        with pytest.raises(DurabilityError, match="definition"):
            recover_state(str(tmp_path), definition=SafetyDefinition.DEF_2A)

    def test_diverged_record_version_raises(self, tmp_path):
        svc = _durable(tmp_path)
        svc.update(inject=[(1, 1)])
        svc.finalize()
        # Forge a record whose version cannot match the replayed engine.
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(DeltaRecord(version=99, inject=((2, 2),), repair=()))
        with pytest.raises(DurabilityError, match="diverged"):
            recover_state(
                str(tmp_path),
                topology=MESH,
                definition=SafetyDefinition.DEF_2B,
            )

    def test_client_state_survives_snapshot_and_tail(self, tmp_path):
        svc = _durable(tmp_path, snapshot_every=3)
        svc.apply_batch([([(1, 1)], []), ([(2, 2)], [])], client="a", seq=1)
        svc.apply_batch([([(3, 3)], [])], client="b", seq=1)
        svc.apply_batch([([], [(2, 2)])], client="a", seq=2)
        rec = recover_state(str(tmp_path))
        assert rec.clients["a"].seq == 2
        assert rec.clients["b"].seq == 1
        assert rec.clients["a"].version == rec.engine.version

    def test_partial_batch_does_not_advance_hwm(self, tmp_path):
        plan = CrashPlan("append.pre", occurrence=3)
        svc = _durable(tmp_path, crash_hook=plan)
        svc.apply_batch([([(1, 1)], [])], client="a", seq=1)
        with pytest.raises(SimulatedCrash):
            # Second delta of the batch dies before reaching the log.
            svc.apply_batch(
                [([(2, 2)], []), ([(3, 3)], [])], client="a", seq=2
            )
        rec = recover_state(
            str(tmp_path), topology=MESH, definition=SafetyDefinition.DEF_2B
        )
        # seq=2 is incomplete on disk: the high-water mark stays at 1,
        # so the client's retry of seq=2 re-applies (idempotently).
        assert rec.clients["a"].seq == 1
        assert (2, 2) in rec.engine.faults.cells  # logged prefix replayed
        assert (3, 3) not in rec.engine.faults.cells
        svc2 = LabelingService.recover(str(tmp_path), topology=MESH)
        retry = svc2.apply_batch(
            [([(2, 2)], []), ([(3, 3)], [])], client="a", seq=2
        )
        assert not retry.duplicate
        assert sorted(svc2.faults.cells) == [(1, 1), (2, 2), (3, 3)]
        assert svc2.verify_against_scratch()

    def test_recovered_service_continues_the_log(self, tmp_path):
        svc = _durable(tmp_path, snapshot_every=2)
        for i in range(3):
            svc.update(inject=[(i, 2)])
        svc2 = LabelingService.recover(str(tmp_path), snapshot_every=2)
        assert svc2.recovery is not None
        assert svc2.version == 3
        svc2.update(inject=[(9, 9)])
        svc2.finalize()
        rec = recover_state(str(tmp_path))
        assert rec.engine.version == 4
        assert (9, 9) in rec.engine.faults.cells
        assert rec.verified

    def test_duplicate_answered_after_recovery(self, tmp_path):
        svc = _durable(tmp_path)
        first = svc.apply_batch([([(4, 4)], [])], client="c", seq=1)
        svc2 = LabelingService.recover(str(tmp_path), topology=MESH)
        again = svc2.apply_batch([([(4, 4)], [])], client="c", seq=1)
        assert again.duplicate
        assert again.version == first.version
        assert again.deltas == first.deltas
        assert svc2.version == 1  # nothing re-applied

    def test_stale_sequence_rejected(self, tmp_path):
        from repro.errors import ServiceError

        svc = _durable(tmp_path)
        svc.apply_batch([([(1, 1)], [])], client="c", seq=1)
        svc.apply_batch([([(2, 2)], [])], client="c", seq=2)
        with pytest.raises(ServiceError, match="stale sequence"):
            svc.apply_batch([([(1, 1)], [])], client="c", seq=1)

    def test_recovery_emits_event(self, tmp_path):
        from repro.obs import JSONLSink, Telemetry
        from repro.obs.summarize import summarize_trace

        svc = _durable(tmp_path)
        svc.update(inject=[(6, 6)])
        trace = str(tmp_path / "trace.jsonl")
        telemetry = Telemetry(sinks=[JSONLSink(trace)])
        recover_state(
            str(tmp_path),
            topology=MESH,
            definition=SafetyDefinition.DEF_2B,
            telemetry=telemetry,
        )
        telemetry.close()
        summary = summarize_trace(trace)
        assert summary.durability["recovery_replay"]["count"] == 1.0
        assert summary.durability["recovery_replay"]["replayed"] == 1.0
