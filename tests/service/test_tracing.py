"""Distributed tracing: client and server spans stitch into one trace.

The client attaches a ``trace`` context (trace id, span id, attempt) to
every NDJSON frame; the server binds it onto the spans recorded while
dispatching that frame.  Stitching the two recorders' exports must then
produce a single Chrome trace where every server ``service_request``
span carries the trace id of the client attempt that caused it — even
under a chaos proxy forcing drops and retries.
"""

import json
import socket as socket_module

import pytest

from repro.mesh import Mesh2D
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    load_chrome_trace,
    stitch_chrome_traces,
)
from repro.service import (
    ChaosProxy,
    LabelingServer,
    LabelingService,
    ServiceClient,
    handle_request,
)


def _serve(service, telemetry=None):
    server = LabelingServer(service, conn_timeout=5.0, telemetry=telemetry)
    thread = server.serve_in_thread()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    thread.join(timeout=5)
    server.close()


def _spans(recorder, name=None):
    events = [
        e for e in recorder.to_chrome_trace()["traceEvents"] if e["ph"] == "X"
    ]
    if name is None:
        return events
    return [e for e in events if e["name"] == name]


class TestTraceContextPropagation:
    def test_frame_carries_trace_context(self):
        """Every retried frame reuses the trace id with a fresh span id
        and a bumped attempt."""
        service = LabelingService(Mesh2D(8, 8))
        server, thread = _serve(service)
        host, port = server.address
        client = ServiceClient.connect_tcp(host, port, retries=3, backoff=0.01)
        seen = []
        original = client.request

        def spying_request(payload):
            seen.append(json.loads(json.dumps(payload.get("trace"))))
            return original(payload)

        client.request = spying_request
        try:
            client.ping()
            # Force one transport failure mid-update: the retry must
            # reuse the trace id.
            client._sock.shutdown(socket_module.SHUT_RDWR)
            client.update(inject=[(2, 2)])
        finally:
            client.close()
            _stop(server, thread)
        assert all(
            set(t) == {"id", "span", "attempt"} for t in seen if t is not None
        )
        update_frames = seen[1:]
        assert len(update_frames) >= 2  # the failed attempt plus the retry
        assert len({t["id"] for t in update_frames}) == 1
        assert len({t["span"] for t in update_frames}) == len(update_frames)
        assert [t["attempt"] for t in update_frames] == list(
            range(len(update_frames))
        )

    def test_server_binds_trace_context_onto_spans(self):
        service = LabelingService(Mesh2D(8, 8))
        recorder = SpanRecorder("server")
        telemetry = Telemetry(spans=recorder, metrics=MetricsRegistry())
        request = {
            "op": "ping",
            "trace": {"id": "t" * 16, "span": "s" * 16, "attempt": 2},
        }
        response, _ = handle_request(service, request, telemetry=telemetry)
        assert response["ok"]
        (span,) = _spans(recorder, "service_request")
        assert span["args"]["trace"] == "t" * 16
        assert span["args"]["parent"] == "s" * 16
        assert span["args"]["attempt"] == 2
        assert span["args"]["op"] == "ping"

    def test_malformed_trace_context_is_ignored(self):
        service = LabelingService(Mesh2D(8, 8))
        recorder = SpanRecorder("server")
        telemetry = Telemetry(spans=recorder)
        for bogus in (17, "x", {"id": 9, "span": [], "attempt": "one"}, None):
            response, _ = handle_request(
                service, {"op": "ping", "trace": bogus}, telemetry=telemetry
            )
            assert response["ok"]
        for span in _spans(recorder, "service_request"):
            assert "trace" not in span["args"]
            assert "parent" not in span["args"]

    def test_engine_spans_inherit_the_trace_binding(self):
        """The context rides down into the dispatch's inner spans, not
        just the service_request wrapper."""
        recorder = SpanRecorder("server")
        telemetry = Telemetry(spans=recorder)
        service = LabelingService(Mesh2D(8, 8), telemetry=telemetry)
        handle_request(
            service,
            {
                "op": "update",
                "inject": [[2, 2]],
                "trace": {"id": "abc", "span": "def", "attempt": 0},
            },
            telemetry=telemetry,
        )
        inner = [
            s for s in _spans(recorder) if s["name"] != "service_request"
        ]
        assert inner, "update dispatch must record inner spans"
        for span in inner:
            assert span["args"]["trace"] == "abc"


class TestStitchedChaosTrace:
    def test_chaos_run_stitches_into_one_parented_trace(self, tmp_path):
        """Satellite: drops + retries through the chaos proxy still
        yield a single stitched Chrome trace in which every server
        request span has a client parent and retries are told apart by
        their attempt tags."""
        client_rec = SpanRecorder("client")
        server_rec = SpanRecorder("server")
        service = LabelingService(Mesh2D(16, 16))
        server, thread = _serve(service, telemetry=Telemetry(spans=server_rec))
        try:
            with ChaosProxy(
                server.address,
                seed=7,
                drop_prob=0.25,
                dup_prob=0.15,
            ) as proxy:
                host, port = proxy.address
                client = ServiceClient.connect_tcp(
                    host,
                    port,
                    retries=8,
                    backoff=0.01,
                    telemetry=Telemetry(spans=client_rec),
                )
                with client:
                    for i in range(8):
                        client.update(inject=[(i, i)])
                assert proxy.stats["dropped"] >= 1  # chaos actually bit
        finally:
            _stop(server, thread)

        client_spans = _spans(client_rec, "client_request")
        server_spans = _spans(server_rec, "service_request")
        assert len(client_spans) > 8  # at least one retry happened
        attempts_by_trace = {}
        for span in client_spans:
            attempts_by_trace.setdefault(span["args"]["trace"], []).append(
                span["args"]["attempt"]
            )
        # One trace id per logical request; retries distinguishable by
        # strictly increasing attempt tags within a trace.
        assert len(attempts_by_trace) == 8
        assert any(len(a) > 1 for a in attempts_by_trace.values())
        for attempts in attempts_by_trace.values():
            assert attempts == list(range(len(attempts)))

        # Every server span is parented by exactly one client attempt:
        # same trace id, and its parent is that attempt's span id.
        client_span_ids = {
            (s["args"]["trace"], s["args"]["span"]) for s in client_spans
        }
        assert server_spans
        for span in server_spans:
            key = (span["args"]["trace"], span["args"]["parent"])
            assert key in client_span_ids

        # The stitched export is one valid Chrome trace: both recorders
        # merge onto one timeline with distinct pid rows.
        stitched = stitch_chrome_traces(
            [client_rec.to_chrome_trace(), server_rec.to_chrome_trace()]
        )
        path = tmp_path / "stitched.json"
        path.write_text(json.dumps(stitched))
        loaded = load_chrome_trace(str(path))
        pids = {e["pid"] for e in loaded["traceEvents"]}
        assert pids == {0, 1}
        names = {
            e["args"]["name"]
            for e in loaded["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"client", "server"}

    def test_stitched_timestamps_nest_server_inside_client(self):
        """With wall-clock anchors the server's work lands inside the
        client span that caused it."""
        client_rec = SpanRecorder("client")
        server_rec = SpanRecorder("server")
        service = LabelingService(Mesh2D(8, 8))
        server, thread = _serve(service, telemetry=Telemetry(spans=server_rec))
        host, port = server.address
        try:
            with ServiceClient.connect_tcp(
                host, port, telemetry=Telemetry(spans=client_rec)
            ) as client:
                client.update(inject=[(3, 3)])
        finally:
            _stop(server, thread)
        stitched = stitch_chrome_traces(
            [client_rec.to_chrome_trace(), server_rec.to_chrome_trace()]
        )
        spans = [e for e in stitched["traceEvents"] if e["ph"] == "X"]
        update_client = next(
            e for e in spans if e["name"] == "client_request"
            and e["args"]["op"] == "update"
        )
        update_server = next(
            e for e in spans if e["name"] == "service_request"
            and e["args"]["op"] == "update"
        )
        slack_us = 50_000  # wall-clock anchors are not perf_counter-exact
        assert (
            update_client["ts"] - slack_us
            <= update_server["ts"]
            <= update_client["ts"] + update_client["dur"] + slack_us
        )
