"""Unit tests for the tile decomposition and halo gathering."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.mesh.tiling import (
    SIDES,
    Tile,
    Tiling,
    gather_framed,
    parse_shard_spec,
)


class TestTiling:
    def test_tiles_partition_the_grid(self):
        tiling = Tiling((11, 7), 4, 3)
        cover = np.zeros((11, 7), dtype=int)
        for t in tiling.tiles():
            cover[t.x0 : t.x1, t.y0 : t.y1] += 1
        assert (cover == 1).all()  # disjoint, exhaustive

    def test_uneven_remainder_goes_to_last_tile(self):
        tiling = Tiling((11, 7), 4, 3)
        assert (tiling.tiles_x, tiling.tiles_y) == (3, 3)
        last = tiling.tile(2, 2)
        assert (last.width, last.height) == (3, 1)

    def test_oversized_tiles_clamp_to_grid(self):
        tiling = Tiling((5, 5), 99, 99)
        assert tiling.num_tiles == 1
        assert tiling.tile(0, 0).rect == (0, 0, 5, 5)

    def test_index_matches_tiles_order(self):
        tiling = Tiling((10, 10), 3, 4)
        for flat, t in enumerate(tiling.tiles()):
            assert tiling.index(t.ix, t.iy) == flat

    def test_out_of_range_tile_rejected(self):
        with pytest.raises(TopologyError):
            Tiling((10, 10), 3, 3).tile(4, 0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            Tiling((0, 5), 2, 2)
        with pytest.raises(TopologyError):
            Tiling((5, 5), 0, 2)

    def test_frame_matches_ghost_convention(self):
        t = Tiling((10, 10), 4, 4).tile(2, 0)  # remainder tile, width 2
        assert t.frame.framed_shape == (t.width + 2, t.height + 2)


class TestNeighborIndex:
    def test_mesh_edges_have_no_neighbor(self):
        tiling = Tiling((9, 9), 3, 3)
        # Corner tile (0, 0): west and south halos are the ghost ring.
        tidx = tiling.index(0, 0)
        by_side = {
            side: tiling.neighbor_index(tidx, i, wraps=False)
            for i, side in enumerate(SIDES)
        }
        assert by_side["west"] is None and by_side["south"] is None
        assert by_side["east"] == tiling.index(1, 0)
        assert by_side["north"] == tiling.index(0, 1)

    def test_torus_wraps_modularly(self):
        tiling = Tiling((9, 9), 3, 3)
        tidx = tiling.index(0, 0)
        assert tiling.neighbor_index(tidx, SIDES.index("west"), True) == (
            tiling.index(2, 0)
        )
        assert tiling.neighbor_index(tidx, SIDES.index("south"), True) == (
            tiling.index(0, 2)
        )

    def test_single_tile_dimension_self_wraps(self):
        # One tile along x: on a torus it is its own east/west neighbour
        # (wrap-around propagation via repeated self-exchange).
        tiling = Tiling((9, 9), 9, 3)
        tidx = tiling.index(0, 1)
        assert tiling.neighbor_index(tidx, SIDES.index("east"), True) == tidx
        assert tiling.neighbor_index(tidx, SIDES.index("west"), True) == tidx
        assert tiling.neighbor_index(tidx, SIDES.index("east"), False) is None


class TestGatherFramed:
    def test_mesh_interior_tile_copies_neighbors(self):
        rng = np.random.default_rng(0)
        plane = rng.random((8, 8)) < 0.5
        framed = gather_framed(plane, (2, 2, 5, 5), wraps=False, fill=False)
        assert framed.shape == (5, 5)
        assert np.array_equal(framed, plane[1:6, 1:6])

    @pytest.mark.parametrize("fill", [False, True])
    def test_mesh_edge_tile_gets_ghost_fill(self, fill):
        plane = np.ones((4, 4), dtype=bool)
        framed = gather_framed(plane, (0, 0, 2, 2), wraps=False, fill=fill)
        assert framed[1:-1, 1:-1].all()
        assert framed[0, :].tolist() == [fill] * 4
        assert framed[:, 0].tolist() == [fill] * 4

    def test_torus_halo_wraps(self):
        plane = np.zeros((5, 5), dtype=bool)
        plane[4, 2] = True  # east neighbour of x=0 across the wrap
        framed = gather_framed(plane, (0, 0, 2, 5), wraps=True, fill=False)
        # framed x=0 is global x=4.
        assert framed[0, 3]  # y halo offset: global y=2 -> framed y=3
        assert not framed[1:, :].any()

    def test_gather_is_a_copy_on_mesh(self):
        plane = np.zeros((4, 4), dtype=bool)
        framed = gather_framed(plane, (0, 0, 4, 4), wraps=False, fill=False)
        framed[1, 1] = True
        assert not plane[0, 0]


class TestParseShardSpec:
    def test_explicit_spec(self):
        tiling = parse_shard_spec("16x8", (100, 100))
        assert (tiling.tile_width, tiling.tile_height) == (16, 8)

    def test_auto_gives_enough_tiles_for_the_pool(self):
        tiling = parse_shard_spec("auto", (2000, 2000), jobs=4)
        assert tiling.num_tiles >= 16
        assert tiling.tile_width >= 64  # never below the floor

    def test_auto_on_a_small_grid_is_one_tile(self):
        assert parse_shard_spec("auto", (50, 50), jobs=1).num_tiles == 1

    @pytest.mark.parametrize("bad", ["", "16", "ax4", "4xax4", "0x4", "-1x4"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_shard_spec(bad, (100, 100))
