"""Unit tests for Mesh2D and Torus2D."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.mesh import Dimension, Direction, Mesh2D, Torus2D


class TestConstruction:
    @pytest.mark.parametrize("bad", [(0, 5), (5, 0), (-1, 3)])
    def test_rejects_nonpositive_dimensions(self, bad):
        with pytest.raises(TopologyError):
            Mesh2D(*bad)
        with pytest.raises(TopologyError):
            Torus2D(*bad)

    def test_shape_and_counts(self):
        m = Mesh2D(5, 7)
        assert m.shape == (5, 7)
        assert m.num_nodes == 35
        assert m.width == 5 and m.height == 7

    def test_equality_and_hash(self):
        assert Mesh2D(4, 4) == Mesh2D(4, 4)
        assert Mesh2D(4, 4) != Torus2D(4, 4)
        assert Mesh2D(4, 4) != Mesh2D(4, 5)
        assert hash(Mesh2D(4, 4)) == hash(Mesh2D(4, 4))


class TestMeshStructure:
    def test_diameter_matches_paper_formula(self):
        # Paper: an n x n mesh has network diameter 2(n - 1).
        assert Mesh2D(100, 100).diameter == 198
        assert Mesh2D(4, 9).diameter == 11

    def test_interior_degree_four(self):
        m = Mesh2D(5, 5)
        assert m.degree((2, 2)) == 4

    def test_corner_degree_two_edge_degree_three(self):
        m = Mesh2D(5, 5)
        assert m.degree((0, 0)) == 2
        assert m.degree((0, 2)) == 3

    def test_boundary_neighbor_is_none(self):
        m = Mesh2D(5, 5)
        assert m.neighbor((0, 0), Direction.WEST) is None
        assert m.neighbor((0, 0), Direction.SOUTH) is None
        assert m.neighbor((4, 4), Direction.EAST) is None

    def test_neighbors_in_dim(self):
        m = Mesh2D(5, 5)
        assert set(m.neighbors_in_dim((2, 2), Dimension.X)) == {(1, 2), (3, 2)}
        assert set(m.neighbors_in_dim((0, 2), Dimension.X)) == {(1, 2)}

    def test_distance_is_manhattan(self):
        m = Mesh2D(10, 10)
        assert m.distance((1, 1), (4, 7)) == 9

    def test_nodes_enumeration(self):
        m = Mesh2D(3, 2)
        assert list(m.nodes()) == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_contains_and_check(self):
        m = Mesh2D(3, 3)
        assert m.contains((2, 2)) and not m.contains((3, 0))
        with pytest.raises(TopologyError):
            m.check((0, -1))


class TestTorusStructure:
    def test_every_node_degree_four(self):
        t = Torus2D(4, 4)
        for c in t.nodes():
            assert t.degree(c) == 4

    def test_wraparound_neighbors(self):
        t = Torus2D(5, 5)
        assert t.neighbor((0, 0), Direction.WEST) == (4, 0)
        assert t.neighbor((4, 4), Direction.EAST) == (0, 4)
        assert t.neighbor((2, 0), Direction.SOUTH) == (2, 4)

    def test_distance_uses_wrap(self):
        t = Torus2D(10, 10)
        assert t.distance((0, 0), (9, 0)) == 1
        assert t.distance((0, 0), (5, 5)) == 10
        assert t.distance((1, 1), (8, 9)) == 3 + 2

    def test_diameter(self):
        assert Torus2D(10, 10).diameter == 10
        assert Torus2D(5, 5).diameter == 4


class TestShiftedViews:
    def test_mesh_shift_semantics(self):
        m = Mesh2D(3, 3)
        g = m.empty_grid()
        g[1, 1] = True
        east = m.shifted(g, Direction.EAST, fill=False)
        # east[x, y] = g[x+1, y]: only (0, 1) sees the marked node to its east.
        assert east[0, 1] and east.sum() == 1
        north = m.shifted(g, Direction.NORTH, fill=False)
        assert north[1, 0] and north.sum() == 1

    @pytest.mark.parametrize("fill", [False, True])
    def test_mesh_fill_applies_on_boundary(self, fill):
        m = Mesh2D(3, 3)
        g = m.empty_grid()
        east = m.shifted(g, Direction.EAST, fill=fill)
        # The easternmost column's east neighbour is a ghost -> fill value.
        assert bool(east[2, 0]) is fill
        assert bool(east[2, 2]) is fill

    def test_torus_shift_wraps(self):
        t = Torus2D(3, 3)
        g = t.empty_grid()
        g[0, 0] = True
        east = t.shifted(g, Direction.EAST, fill=False)
        # Node (2, 0)'s east neighbour wraps to (0, 0).
        assert east[2, 0] and east.sum() == 1

    def test_shift_matches_neighbor_pointwise(self, any_topology):
        topo = any_topology
        rng = np.random.default_rng(1)
        g = rng.random(topo.shape) < 0.4
        for d in Direction:
            view = topo.shifted(g, d, fill=False)
            for c in topo.nodes():
                n = topo.neighbor(c, d)
                expected = bool(g[n]) if n is not None else False
                assert bool(view[c]) == expected, (c, d)

    def test_shift_rejects_wrong_shape(self):
        m = Mesh2D(3, 3)
        with pytest.raises(TopologyError):
            m.shifted(np.zeros((2, 2), dtype=bool), Direction.EAST, fill=False)

    def test_shift_does_not_mutate_input(self):
        m = Mesh2D(4, 4)
        g = m.empty_grid()
        g[2, 2] = True
        before = g.copy()
        m.shifted(g, Direction.WEST, fill=True)
        assert np.array_equal(g, before)


class TestGridHelpers:
    def test_grid_from_coords_validates(self):
        m = Mesh2D(4, 4)
        g = m.grid_from_coords([(0, 0), (3, 3)])
        assert g.sum() == 2 and g[0, 0] and g[3, 3]
        with pytest.raises(TopologyError):
            m.grid_from_coords([(4, 0)])

    def test_empty_grid_fill(self):
        m = Mesh2D(2, 2)
        assert not m.empty_grid().any()
        assert m.empty_grid(True).all()
