"""Unit tests for the ghost frame."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.mesh import GhostFrame


class TestGhostFrame:
    def test_framed_shape(self):
        assert GhostFrame(5, 3).framed_shape == (7, 5)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(TopologyError):
            GhostFrame(0, 3)

    def test_coordinate_mapping_roundtrip(self):
        f = GhostFrame(4, 4)
        for c in [(0, 0), (3, 3), (1, 2)]:
            assert f.to_bare(f.to_framed(c)) == c

    def test_to_bare_rejects_ghosts(self):
        f = GhostFrame(4, 4)
        with pytest.raises(TopologyError):
            f.to_bare((0, 2))
        with pytest.raises(TopologyError):
            f.to_bare((5, 1))

    def test_is_ghost_ring_only(self):
        f = GhostFrame(3, 3)
        ghosts = [c for c in np.ndindex(f.framed_shape) if f.is_ghost(c)]
        # Frame of a 3x3 grid: 5*5 - 3*3 = 16 ghost positions.
        assert len(ghosts) == 16
        assert not f.is_ghost((1, 1)) and not f.is_ghost((3, 3))

    @pytest.mark.parametrize("ghost_value", [False, True])
    def test_frame_fills_ring(self, ghost_value):
        f = GhostFrame(3, 3)
        grid = np.zeros((3, 3), dtype=bool)
        grid[1, 1] = True
        framed = f.frame(grid, ghost_value)
        assert framed[2, 2]  # interior shifted by (+1, +1)
        assert bool(framed[0, 0]) is ghost_value
        assert bool(framed[4, 2]) is ghost_value

    def test_frame_unframe_roundtrip(self):
        f = GhostFrame(4, 2)
        rng = np.random.default_rng(0)
        grid = rng.random((4, 2)) < 0.5
        assert np.array_equal(f.unframe(f.frame(grid, True)), grid)

    def test_shape_validation(self):
        f = GhostFrame(3, 3)
        with pytest.raises(TopologyError):
            f.frame(np.zeros((4, 3), dtype=bool), False)
        with pytest.raises(TopologyError):
            f.unframe(np.zeros((3, 3), dtype=bool))
