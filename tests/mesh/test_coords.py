"""Unit tests for coordinates, directions and quadrants."""

import pytest

from repro.mesh.coords import (
    DIRECTIONS,
    Dimension,
    Direction,
    Quadrant,
    add,
    chebyshev,
    neighbors4,
    neighbors8,
    sub,
)
from repro.types import manhattan


class TestDimension:
    def test_other_is_involution(self):
        assert Dimension.X.other is Dimension.Y
        assert Dimension.Y.other is Dimension.X
        for d in Dimension:
            assert d.other.other is d

    def test_int_values(self):
        assert int(Dimension.X) == 0
        assert int(Dimension.Y) == 1


class TestDirection:
    def test_offsets_are_unit_vectors(self):
        for d in Direction:
            dx, dy = d.offset
            assert abs(dx) + abs(dy) == 1

    def test_dimension_of_each_direction(self):
        assert Direction.EAST.dimension is Dimension.X
        assert Direction.WEST.dimension is Dimension.X
        assert Direction.NORTH.dimension is Dimension.Y
        assert Direction.SOUTH.dimension is Dimension.Y

    def test_opposite_is_involution(self):
        for d in Direction:
            assert d.opposite.opposite is d
            ox, oy = d.opposite.offset
            assert (ox, oy) == (-d.offset[0], -d.offset[1])

    def test_clockwise_cycle_has_period_four(self):
        for d in Direction:
            cur = d
            for _ in range(4):
                cur = cur.clockwise
            assert cur is d

    def test_clockwise_of_north_is_east(self):
        assert Direction.NORTH.clockwise is Direction.EAST
        assert Direction.EAST.clockwise is Direction.SOUTH

    def test_counterclockwise_inverts_clockwise(self):
        for d in Direction:
            assert d.clockwise.counterclockwise is d

    def test_directions_tuple_is_deterministic(self):
        assert DIRECTIONS == (
            Direction.EAST,
            Direction.WEST,
            Direction.NORTH,
            Direction.SOUTH,
        )


class TestQuadrant:
    def test_origin_in_every_quadrant(self):
        for q in Quadrant:
            assert q.contains((3, 3), (3, 3))

    def test_axes_shared_between_adjacent_quadrants(self):
        # A point on the +x axis is in both (+,+) and (+,-).
        assert Quadrant.PP.contains((0, 0), (5, 0))
        assert Quadrant.PN.contains((0, 0), (5, 0))
        assert not Quadrant.NP.contains((0, 0), (5, 0))

    def test_strict_interior_in_exactly_one_quadrant(self):
        point = (4, -2)
        holders = [q for q in Quadrant if q.contains((0, 0), point)]
        assert holders == [Quadrant.PN]


class TestCoordHelpers:
    def test_add_sub_roundtrip(self):
        assert add((2, 3), (1, -1)) == (3, 2)
        assert sub(add((2, 3), (5, 7)), (5, 7)) == (2, 3)

    def test_neighbors4_count_and_distance(self):
        n = list(neighbors4((5, 5)))
        assert len(n) == 4
        assert all(manhattan((5, 5), v) == 1 for v in n)

    def test_neighbors8_count_and_distance(self):
        n = list(neighbors8((5, 5)))
        assert len(n) == 8
        assert all(chebyshev((5, 5), v) == 1 for v in n)
        assert (5, 5) not in n

    def test_chebyshev_vs_manhattan(self):
        assert chebyshev((0, 0), (3, 4)) == 4
        assert manhattan((0, 0), (3, 4)) == 7
