"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh import Mesh2D, Torus2D


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic per-test generator."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def mesh8() -> Mesh2D:
    return Mesh2D(8, 8)


@pytest.fixture
def mesh12() -> Mesh2D:
    return Mesh2D(12, 12)


@pytest.fixture
def torus8() -> Torus2D:
    return Torus2D(8, 8)


@pytest.fixture(params=["mesh", "torus"])
def any_topology(request):
    """Parametrised over both topologies at 10x10."""
    return Mesh2D(10, 10) if request.param == "mesh" else Torus2D(10, 10)
