"""Unit tests for the shared type helpers and the exception hierarchy."""

import numpy as np
import pytest

import repro
from repro import errors
from repro.types import as_bool_grid, manhattan


class TestManhattan:
    def test_basic(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((3, 4), (0, 0)) == 7
        assert manhattan((2, 2), (2, 2)) == 0


class TestAsBoolGrid:
    def test_coerces_lists(self):
        g = as_bool_grid([[1, 0], [0, 1]])
        assert g.dtype == bool and g[0, 0] and not g[0, 1]

    def test_shape_check(self):
        with pytest.raises(ValueError):
            as_bool_grid(np.zeros((2, 2)), shape=(3, 3))

    def test_shape_check_passes(self):
        g = as_bool_grid(np.zeros((2, 3)), shape=(2, 3))
        assert g.shape == (2, 3)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.TopologyError,
            errors.FaultModelError,
            errors.ProtocolError,
            errors.ConvergenceError,
            errors.GeometryError,
            errors.RoutingError,
            errors.PartitionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.GeometryError("boom")


class TestPackageSurface:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_doctest_like_quickstart(self):
        # The README/__init__ quickstart, executed literally.
        import numpy as np

        from repro import Mesh2D, label_mesh, uniform_random
        from repro.core import theorems

        mesh = Mesh2D(100, 100)
        faults = uniform_random(mesh.shape, 60, np.random.default_rng(7))
        result = label_mesh(mesh, faults)
        assert all(c.holds for c in theorems.check_all(result))
