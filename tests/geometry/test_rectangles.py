"""Unit tests for Rect and rectangle predicates."""

import pytest

from repro.errors import GeometryError
from repro.geometry import CellSet, Rect, bounding_rect, is_rectangle


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Rect(2, 0, 1, 0)

    def test_dimensions(self):
        r = Rect(1, 2, 4, 3)
        assert (r.width, r.height, r.area) == (4, 2, 8)
        assert r.diameter == 4

    def test_single_cell(self):
        r = Rect(3, 3, 3, 3)
        assert r.area == 1 and r.diameter == 0

    def test_contains(self):
        r = Rect(1, 1, 3, 3)
        assert r.contains((1, 3)) and r.contains((2, 2))
        assert not r.contains((0, 1)) and not r.contains((4, 3))

    def test_cells_enumeration(self):
        r = Rect(0, 0, 1, 1)
        assert sorted(r.cells()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_corners(self):
        assert Rect(0, 0, 2, 1).corners() == ((0, 0), (2, 0), (0, 1), (2, 1))

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(2, 2, 4, 4))
        assert not a.intersects(Rect(3, 0, 4, 2))

    def test_distance(self):
        a = Rect(0, 0, 1, 1)
        assert a.distance(Rect(2, 0, 3, 1)) == 1   # edge-adjacent columns
        assert a.distance(Rect(3, 0, 4, 1)) == 2   # one empty column between
        assert a.distance(Rect(3, 3, 4, 4)) == 4   # Manhattan: dx 2 + dy 2
        assert a.distance(Rect(1, 1, 5, 5)) == 0   # overlapping

    def test_expanded_and_clamped(self):
        r = Rect(1, 1, 2, 2).expanded(2)
        assert r == Rect(-1, -1, 4, 4)
        assert r.clamped((4, 4)) == Rect(0, 0, 3, 3)

    def test_clamped_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect(5, 5, 6, 6).clamped((4, 4))

    def test_to_cells(self):
        cs = Rect(1, 1, 2, 3).to_cells((5, 5))
        assert len(cs) == 6 and is_rectangle(cs)

    def test_to_cells_out_of_grid(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 5, 5).to_cells((5, 5))

    def test_ordering_is_total(self):
        assert sorted([Rect(1, 0, 1, 0), Rect(0, 0, 0, 0)])[0] == Rect(0, 0, 0, 0)


class TestPredicates:
    def test_bounding_rect(self):
        s = CellSet.from_coords((6, 6), [(1, 1), (3, 4)])
        assert bounding_rect(s) == Rect(1, 1, 3, 4)

    def test_is_rectangle_true(self):
        assert is_rectangle(Rect(0, 0, 2, 1).to_cells((4, 4)))
        assert is_rectangle(CellSet.from_coords((4, 4), [(2, 2)]))

    def test_is_rectangle_false_for_l_shape(self):
        s = CellSet.from_coords((4, 4), [(0, 0), (1, 0), (0, 1)])
        assert not is_rectangle(s)

    def test_is_rectangle_false_for_empty(self):
        assert not is_rectangle(CellSet.empty((4, 4)))
