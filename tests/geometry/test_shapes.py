"""Unit tests for the canonical shape generators."""

import pytest

from repro.errors import GeometryError
from repro.geometry import is_orthoconvex, shapes
from repro.geometry.rectangles import bounding_rect

SHAPE = (16, 16)


class TestRectangle:
    def test_size(self):
        r = shapes.rectangle(SHAPE, (2, 3), 4, 5)
        assert len(r) == 20
        assert r.bounding_box() == (2, 3, 5, 7)

    def test_fit_validation(self):
        with pytest.raises(GeometryError):
            shapes.rectangle((4, 4), (2, 2), 3, 3)
        with pytest.raises(GeometryError):
            shapes.rectangle((4, 4), (0, 0), 0, 2)


class TestLetterShapes:
    def test_l_cell_count(self):
        l = shapes.l_shape(SHAPE, (0, 0), 5, 4, 1)
        # Bottom arm 5 + left arm 4 - shared elbow 1.
        assert len(l) == 8

    def test_t_has_bar_and_stem(self):
        t = shapes.t_shape(SHAPE, (0, 0), 5, 4, 1)
        assert (0, 3) in t and (4, 3) in t  # top bar ends
        assert (2, 0) in t                  # stem bottom (centered)

    def test_plus_is_symmetric_cross(self):
        p = shapes.plus_shape(SHAPE, (0, 0), 5, 5, 1)
        assert len(p) == 9
        assert (2, 0) in p and (0, 2) in p and (2, 4) in p and (4, 2) in p

    def test_u_has_cavity(self):
        u = shapes.u_shape(SHAPE, (0, 0), 5, 4, 1)
        assert (2, 2) not in u  # the cavity
        assert (0, 3) in u and (4, 3) in u  # arm tops

    def test_h_has_two_cavities(self):
        h = shapes.h_shape(SHAPE, (0, 0), 5, 5, 1)
        assert (2, 0) not in h and (2, 4) not in h
        assert (2, 2) in h  # crossbar

    def test_thickness_validation(self):
        with pytest.raises(GeometryError):
            shapes.l_shape(SHAPE, (0, 0), 4, 4, 0)
        with pytest.raises(GeometryError):
            shapes.l_shape(SHAPE, (0, 0), 4, 4, 5)
        with pytest.raises(GeometryError):
            shapes.u_shape(SHAPE, (0, 0), 2, 4, 1)  # too narrow for a cavity

    def test_thick_arms(self):
        l = shapes.l_shape(SHAPE, (0, 0), 6, 6, 2)
        assert (1, 1) in l and (5, 1) in l and (1, 5) in l
        assert (3, 3) not in l

    def test_bounding_boxes_match_request(self):
        for builder in (shapes.l_shape, shapes.t_shape, shapes.u_shape):
            s = builder(SHAPE, (3, 2), 6, 5, 1)
            assert bounding_rect(s).width == 6
            assert bounding_rect(s).height == 5


class TestStaircase:
    def test_cells_on_diagonal(self):
        s = shapes.staircase_shape(SHAPE, (2, 2), 4)
        assert set(s.coords()) == {(2, 2), (3, 3), (4, 4), (5, 5)}

    def test_orthoconvex_pinched_polygon(self):
        assert is_orthoconvex(shapes.staircase_shape(SHAPE, (0, 0), 6))

    def test_needs_positive_steps(self):
        with pytest.raises(GeometryError):
            shapes.staircase_shape(SHAPE, (0, 0), 0)
