"""Unit tests for quadrant decomposition (Lemma 2/3 primitives)."""

import numpy as np

from repro.geometry import (
    CellSet,
    quadrant_extreme_corner,
    quadrant_mask,
    quadrants_with_members,
    shapes,
)
from repro.geometry.boundary import corner_cells
from repro.mesh.coords import Quadrant


class TestQuadrantMask:
    def test_origin_in_all_quadrants(self):
        for q in Quadrant:
            m = quadrant_mask((5, 5), (2, 2), q)
            assert m[2, 2]

    def test_axes_overlap(self):
        pp = quadrant_mask((5, 5), (2, 2), Quadrant.PP)
        pn = quadrant_mask((5, 5), (2, 2), Quadrant.PN)
        # Positive x half-axis belongs to both.
        assert pp[4, 2] and pn[4, 2]
        # Strict interior of (+,+) belongs only to PP.
        assert pp[4, 4] and not pn[4, 4]

    def test_union_covers_grid(self):
        total = np.zeros((6, 6), dtype=bool)
        for q in Quadrant:
            total |= quadrant_mask((6, 6), (3, 2), q)
        assert total.all()


class TestQuadrantExtremeCorner:
    def test_empty_quadrant_returns_none(self):
        s = CellSet.from_coords((6, 6), [(4, 4)])
        assert quadrant_extreme_corner(s, (5, 5), Quadrant.PP) is None

    def test_rectangle_extremes_are_rect_corners(self):
        r = shapes.rectangle((8, 8), (2, 2), 3, 3)
        # Around the rectangle's own centre cell, each quadrant's extreme
        # is the corresponding rectangle corner.
        extremes = {
            q: quadrant_extreme_corner(r, (3, 3), q) for q in Quadrant
        }
        assert extremes[Quadrant.PP] == (4, 4)
        assert extremes[Quadrant.NN] == (2, 2)
        assert extremes[Quadrant.PN] == (4, 2)
        assert extremes[Quadrant.NP] == (2, 4)

    def test_lemma2_constructive_witness_is_a_corner(self):
        # The proof's extreme-(y, then x) node is a Definition-4 corner.
        l = shapes.l_shape((10, 10), (1, 1), 5, 5, 2)
        corners = corner_cells(l)
        for u in l:
            for q in Quadrant:
                w = quadrant_extreme_corner(l, u, q)
                assert w is not None
                assert w in corners

    def test_origin_member_guarantees_nonempty(self):
        # Lemma 2: for u inside the set, each quadrant holds >= 1 member
        # (u itself at minimum).
        s = CellSet.from_coords((6, 6), [(3, 3)])
        for q in Quadrant:
            assert quadrant_extreme_corner(s, (3, 3), q) == (3, 3)


class TestQuadrantsWithMembers:
    def test_outside_node_of_orthoconvex_region_has_empty_quadrant(self):
        # Lemma 3 on a T-shape for all nodes just outside it.
        t = shapes.t_shape((10, 10), (2, 2), 5, 4, 1)
        mask = t.mask
        for x in range(10):
            for y in range(10):
                if mask[x, y]:
                    continue
                occ = quadrants_with_members(t, (x, y))
                assert not all(occ.values()), (x, y)

    def test_inside_node_sees_all_quadrants(self):
        r = shapes.rectangle((8, 8), (1, 1), 4, 4)
        occ = quadrants_with_members(r, (2, 2))
        assert all(occ.values())
