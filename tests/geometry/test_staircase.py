"""Unit tests for staircase connection."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    CellSet,
    connect_orthoconvex,
    is_connected,
    is_orthoconvex,
    staircase_cells,
)


class TestStaircaseCells:
    def test_adjacent_cells_need_no_bridge(self):
        assert staircase_cells((0, 0), (1, 0)) == []
        assert staircase_cells((0, 0), (1, 1)) == []

    def test_pure_diagonal(self):
        cells = staircase_cells((0, 0), (3, 3))
        assert cells == [(1, 1), (2, 2)]

    def test_mixed_path_length(self):
        # Chebyshev distance 4 -> 3 intermediate cells.
        cells = staircase_cells((0, 0), (4, 2))
        assert len(cells) == 3
        # Chain + endpoints must be king-connected.
        full = [(0, 0)] + cells + [(4, 2)]
        for a, b in zip(full, full[1:]):
            assert max(abs(a[0] - b[0]), abs(a[1] - b[1])) == 1

    def test_same_cell(self):
        assert staircase_cells((2, 2), (2, 2)) == []

    def test_negative_directions(self):
        cells = staircase_cells((3, 3), (0, 0))
        assert cells == [(2, 2), (1, 1)]

    def test_chain_with_endpoints_is_orthoconvex(self):
        u, v = (1, 1), (6, 4)
        chain = CellSet.from_coords((10, 10), [u, v] + staircase_cells(u, v))
        assert is_orthoconvex(chain)


class TestConnectOrthoconvex:
    def test_connected_orthoconvex_input_is_identity(self):
        # An L-tromino is already a connected orthoconvex polygon.
        s = CellSet.from_coords((8, 8), [(1, 1), (2, 1), (2, 2)])
        assert connect_orthoconvex(s) == s

    def test_two_distant_cells(self):
        s = CellSet.from_coords((10, 10), [(0, 0), (5, 5)])
        out = connect_orthoconvex(s)
        assert is_orthoconvex(out)
        assert s <= out
        # A pure diagonal join needs exactly 4 bridge cells.
        assert len(out) == 6

    def test_collinear_distant_cells(self):
        s = CellSet.from_coords((10, 10), [(0, 0), (6, 0)])
        out = connect_orthoconvex(s)
        # Same row: the closure of a connected row segment is the segment.
        assert len(out) == 7 and is_orthoconvex(out)

    def test_three_fragments(self):
        s = CellSet.from_coords((12, 12), [(0, 0), (5, 5), (10, 0)])
        out = connect_orthoconvex(s)
        assert is_orthoconvex(out) and s <= out

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            connect_orthoconvex(CellSet.empty((5, 5)))

    def test_result_always_connected_8(self):
        s = CellSet.from_coords((9, 9), [(0, 8), (8, 0), (4, 4)])
        assert is_connected(connect_orthoconvex(s), connectivity=8)
