"""Unit tests for connected components and set distances."""

import pytest

from repro.geometry import CellSet, connected_components, is_connected, set_distance


class TestComponents4:
    def test_single_component(self):
        s = CellSet.from_coords((5, 5), [(1, 1), (1, 2), (2, 2)])
        comps = connected_components(s, 4)
        assert len(comps) == 1
        assert comps[0] == s

    def test_diagonal_cells_split_under_4(self):
        s = CellSet.from_coords((5, 5), [(1, 1), (2, 2)])
        assert len(connected_components(s, 4)) == 2

    def test_diagonal_cells_join_under_8(self):
        s = CellSet.from_coords((5, 5), [(1, 1), (2, 2)])
        assert len(connected_components(s, 8)) == 1

    def test_empty_set_has_no_components(self):
        assert connected_components(CellSet.empty((4, 4)), 4) == []

    def test_components_partition_the_set(self):
        s = CellSet.from_coords((6, 6), [(0, 0), (0, 1), (3, 3), (5, 5)])
        comps = connected_components(s, 4)
        union = CellSet.empty((6, 6))
        total = 0
        for c in comps:
            assert union.isdisjoint(c)
            union = union | c
            total += len(c)
        assert union == s and total == len(s)

    def test_deterministic_order(self):
        s = CellSet.from_coords((6, 6), [(5, 5), (0, 0)])
        comps = connected_components(s, 4)
        assert comps[0].coords() == [(0, 0)]

    def test_invalid_connectivity_rejected(self):
        with pytest.raises(ValueError):
            connected_components(CellSet.empty((3, 3)), 6)


class TestIsConnected:
    def test_empty_not_connected(self):
        assert not is_connected(CellSet.empty((3, 3)))

    def test_singleton_connected(self):
        assert is_connected(CellSet.from_coords((3, 3), [(1, 1)]))

    def test_connectivity_parameter_matters(self):
        s = CellSet.from_coords((4, 4), [(0, 0), (1, 1)])
        assert not is_connected(s, 4)
        assert is_connected(s, 8)


class TestSetDistance:
    def test_adjacent_sets(self):
        a = CellSet.from_coords((5, 5), [(0, 0)])
        b = CellSet.from_coords((5, 5), [(0, 1)])
        assert set_distance(a, b) == 1

    def test_diagonal_distance_is_two(self):
        a = CellSet.from_coords((5, 5), [(0, 0)])
        b = CellSet.from_coords((5, 5), [(1, 1)])
        assert set_distance(a, b) == 2

    def test_min_over_pairs(self):
        a = CellSet.from_coords((8, 8), [(0, 0), (0, 7)])
        b = CellSet.from_coords((8, 8), [(4, 7)])
        assert set_distance(a, b) == 4

    def test_empty_raises(self):
        a = CellSet.from_coords((3, 3), [(0, 0)])
        with pytest.raises(ValueError):
            set_distance(a, CellSet.empty((3, 3)))
