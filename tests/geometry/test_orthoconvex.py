"""Unit tests for orthogonal convexity tests and closures.

The canonical facts from Section 2 of the paper: L, T and + shaped
regions are orthogonal convex; U and H shaped regions are not; every
rectangle trivially is.
"""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    CellSet,
    column_runs,
    fill_spans,
    is_orthoconvex,
    orthoconvex_closure,
    row_runs,
    shapes,
)

SHAPE = (12, 12)


class TestIsOrthoconvex:
    def test_rectangle_is_orthoconvex(self):
        assert is_orthoconvex(shapes.rectangle(SHAPE, (2, 2), 4, 3))

    def test_l_t_plus_are_orthoconvex(self):
        # Paper Section 2: "T-shape, L-shape, and +-shape fault regions
        # are orthogonal convex polygons".
        assert is_orthoconvex(shapes.l_shape(SHAPE, (1, 1), 5, 4, 2))
        assert is_orthoconvex(shapes.t_shape(SHAPE, (1, 1), 5, 4, 1))
        assert is_orthoconvex(shapes.plus_shape(SHAPE, (1, 1), 5, 5, 1))

    def test_u_h_are_not_orthoconvex(self):
        # Paper Section 2: "U-shape and H-shape fault regions are
        # non-orthogonal convex polygons".
        assert not is_orthoconvex(shapes.u_shape(SHAPE, (1, 1), 5, 4, 1))
        assert not is_orthoconvex(shapes.h_shape(SHAPE, (1, 1), 5, 5, 1))

    def test_diagonal_staircase_is_orthoconvex(self):
        # Corner-touching cells form a single pinched polygon.
        assert is_orthoconvex(shapes.staircase_shape(SHAPE, (2, 2), 5))

    def test_disconnected_set_fails_connectivity(self):
        s = CellSet.from_coords(SHAPE, [(0, 0), (4, 4)])
        assert not is_orthoconvex(s, require_connected=True)
        assert is_orthoconvex(s, require_connected=False)

    def test_row_gap_fails(self):
        s = CellSet.from_coords(SHAPE, [(0, 0), (2, 0), (1, 1), (0, 1), (2, 1)])
        assert not is_orthoconvex(s, require_connected=False)

    def test_empty_set_is_not_a_region(self):
        assert not is_orthoconvex(CellSet.empty(SHAPE))

    def test_paper_example_pinched_pair(self):
        # The worked example's disabled region {(2,1), (3,2)}.
        s = CellSet.from_coords(SHAPE, [(2, 1), (3, 2)])
        assert is_orthoconvex(s)


class TestFillSpans:
    def test_fills_horizontal_gap(self):
        s = CellSet.from_coords((5, 5), [(0, 2), (4, 2)])
        filled = fill_spans(s.mask, axis=0)
        assert filled[:, 2].all()
        assert filled.sum() == 5

    def test_fills_vertical_gap(self):
        s = CellSet.from_coords((5, 5), [(2, 0), (2, 3)])
        filled = fill_spans(s.mask, axis=1)
        assert filled[2, 0:4].all() and not filled[2, 4]

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            fill_spans(np.zeros((3, 3), dtype=bool), axis=2)

    def test_noop_on_convex_input(self):
        r = shapes.rectangle((6, 6), (1, 1), 3, 3)
        assert np.array_equal(fill_spans(r.mask, 0), r.mask)
        assert np.array_equal(fill_spans(r.mask, 1), r.mask)


class TestClosure:
    def test_closure_of_u_is_filled_bbox_part(self):
        u = shapes.u_shape(SHAPE, (1, 1), 5, 4, 1)
        closed = orthoconvex_closure(u)
        # The cavity must be filled; a U's closure is its full bounding box.
        assert len(closed) == 5 * 4
        assert is_orthoconvex(closed)

    def test_closure_is_idempotent(self):
        u = shapes.u_shape(SHAPE, (1, 1), 6, 5, 2)
        once = orthoconvex_closure(u)
        assert orthoconvex_closure(once) == once

    def test_closure_contains_input(self):
        s = CellSet.from_coords(SHAPE, [(1, 1), (5, 3), (3, 7)])
        assert s <= orthoconvex_closure(s)

    def test_closure_of_orthoconvex_is_identity(self):
        t = shapes.t_shape(SHAPE, (2, 2), 5, 5, 1)
        assert orthoconvex_closure(t) == t

    def test_closure_of_diagonal_pair_is_itself(self):
        s = CellSet.from_coords(SHAPE, [(2, 1), (3, 2)])
        assert orthoconvex_closure(s) == s

    def test_closure_may_be_disconnected(self):
        s = CellSet.from_coords(SHAPE, [(0, 0), (5, 5)])
        assert orthoconvex_closure(s) == s  # far apart: nothing to fill

    def test_closure_needs_iteration(self):
        # An H closes to its bounding box, but only after the first
        # horizontal fill enables further vertical fills.
        h = shapes.h_shape(SHAPE, (1, 1), 5, 5, 1)
        closed = orthoconvex_closure(h)
        assert len(closed) == 25

    def test_empty_closure_is_empty(self):
        e = CellSet.empty(SHAPE)
        assert orthoconvex_closure(e) == e

    def test_minimality_against_bruteforce(self):
        # On a tiny grid, verify the closure is contained in every
        # orthoconvex superset (least-fixpoint minimality).
        import itertools

        grid = (3, 3)
        seed = CellSet.from_coords(grid, [(0, 0), (2, 1)])
        closed = orthoconvex_closure(seed)
        cells = [(x, y) for x in range(3) for y in range(3)]
        for r in range(len(cells) + 1):
            for combo in itertools.combinations(cells, r):
                cand = CellSet.from_coords(grid, combo)
                if seed <= cand and is_orthoconvex(cand, require_connected=False):
                    assert closed <= cand


class TestRuns:
    def test_row_runs_of_l_shape(self):
        l = shapes.l_shape((8, 8), (1, 1), 4, 3, 1)
        runs = row_runs(l)
        assert runs[0] == (1, 1, 4)  # bottom arm spans x 1..4
        assert runs[1] == (2, 1, 1)  # upper rows only the left column
        assert runs[2] == (3, 1, 1)

    def test_column_runs_of_rectangle(self):
        r = shapes.rectangle((8, 8), (2, 3), 2, 4)
        assert column_runs(r) == [(2, 3, 6), (3, 3, 6)]

    def test_runs_reject_gaps(self):
        s = CellSet.from_coords((8, 8), [(0, 0), (2, 0)])
        with pytest.raises(GeometryError):
            row_runs(s)
        s2 = CellSet.from_coords((8, 8), [(0, 0), (0, 2)])
        with pytest.raises(GeometryError):
            column_runs(s2)
