"""Unit tests for monotone staircase paths inside regions."""

import pytest

from repro.geometry import (
    CellSet,
    is_monotone_path,
    monotone_path_within,
    shapes,
)

SHAPE = (12, 12)


class TestIsMonotonePath:
    def test_empty_and_single(self):
        assert is_monotone_path([])
        assert is_monotone_path([(3, 3)])

    def test_straight_line(self):
        assert is_monotone_path([(0, 0), (1, 0), (2, 0)])

    def test_staircase(self):
        assert is_monotone_path([(0, 0), (1, 1), (2, 1), (2, 2)])

    def test_reversal_rejected(self):
        assert not is_monotone_path([(0, 0), (1, 0), (0, 0)])

    def test_detour_rejected(self):
        # Moving north then south again is non-monotone toward (2, 0).
        assert not is_monotone_path([(0, 0), (1, 1), (1, 0), (2, 0)])

    def test_non_king_step_rejected(self):
        assert not is_monotone_path([(0, 0), (2, 0)])


class TestMonotonePathWithin:
    def test_within_rectangle(self):
        r = shapes.rectangle(SHAPE, (1, 1), 5, 4)
        path = monotone_path_within(r, (1, 1), (5, 4))
        assert path is not None
        assert path[0] == (1, 1) and path[-1] == (5, 4)
        assert is_monotone_path(path)
        assert all(c in r for c in path)

    def test_same_cell(self):
        r = shapes.rectangle(SHAPE, (1, 1), 3, 3)
        assert monotone_path_within(r, (2, 2), (2, 2)) == [(2, 2)]

    def test_endpoint_outside_region(self):
        r = shapes.rectangle(SHAPE, (1, 1), 3, 3)
        assert monotone_path_within(r, (0, 0), (2, 2)) is None

    def test_l_shape_around_the_elbow(self):
        l = shapes.l_shape(SHAPE, (1, 1), 6, 6, 1)
        # Arm tip to arm tip must route through the elbow, monotonically.
        path = monotone_path_within(l, (6, 1), (1, 6))
        assert path is not None and is_monotone_path(path)

    def test_pinched_staircase(self):
        s = shapes.staircase_shape(SHAPE, (2, 2), 5)
        path = monotone_path_within(s, (2, 2), (6, 6))
        assert path is not None
        assert len(path) == 5  # pure diagonal

    def test_u_shape_has_no_monotone_path_across(self):
        # The non-orthoconvex U: arm tip to arm tip requires descending
        # into the base and back up — not monotone.
        u = shapes.u_shape(SHAPE, (1, 1), 7, 5, 1)
        assert monotone_path_within(u, (1, 5), (7, 5)) is None

    def test_plus_shape_all_pairs(self):
        p = shapes.plus_shape(SHAPE, (1, 1), 5, 5, 1)
        cells = p.coords()
        for u in cells:
            for v in cells:
                path = monotone_path_within(p, u, v)
                assert path is not None, (u, v)
                assert is_monotone_path(path)
