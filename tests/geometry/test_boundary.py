"""Unit tests for boundary tracing, perimeter and corner cells."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    CellSet,
    boundary_loops,
    corner_cells,
    perimeter,
    shapes,
)


class TestBoundaryLoops:
    def test_single_cell(self):
        s = CellSet.from_coords((4, 4), [(1, 1)])
        loops = boundary_loops(s)
        assert len(loops) == 1
        assert sorted(loops[0]) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_rectangle_has_four_corners(self):
        r = shapes.rectangle((8, 8), (1, 2), 4, 3)
        loops = boundary_loops(r)
        assert len(loops) == 1
        assert sorted(loops[0]) == [(1, 2), (1, 5), (5, 2), (5, 5)]

    def test_l_shape_has_six_corners(self):
        l = shapes.l_shape((8, 8), (0, 0), 4, 4, 1)
        loops = boundary_loops(l)
        assert len(loops) == 1
        assert len(loops[0]) == 6

    def test_pinched_pair_is_one_loop(self):
        # Two diagonal squares: a single pinched polygon, not two loops.
        s = CellSet.from_coords((5, 5), [(1, 1), (2, 2)])
        loops = boundary_loops(s)
        assert len(loops) == 1
        # The pinch vertex (2, 2) is visited twice.
        assert loops[0].count((2, 2)) == 2

    def test_two_separate_regions_two_loops(self):
        s = CellSet.from_coords((8, 8), [(0, 0), (5, 5)])
        assert len(boundary_loops(s)) == 2

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            boundary_loops(CellSet.empty((3, 3)))

    def test_loop_edges_are_rectilinear_unit_steps_after_corner_merge(self):
        t = shapes.t_shape((10, 10), (1, 1), 5, 4, 1)
        for loop in boundary_loops(t):
            n = len(loop)
            for i in range(n):
                a, b = loop[i], loop[(i + 1) % n]
                assert (a[0] == b[0]) != (a[1] == b[1])  # axis-aligned segment


class TestPerimeter:
    def test_single_cell(self):
        assert perimeter(CellSet.from_coords((3, 3), [(1, 1)])) == 4

    def test_rectangle(self):
        assert perimeter(shapes.rectangle((8, 8), (1, 1), 4, 3)) == 14

    def test_domino(self):
        assert perimeter(CellSet.from_coords((4, 4), [(1, 1), (2, 1)])) == 6

    def test_empty(self):
        assert perimeter(CellSet.empty((3, 3))) == 0


class TestCornerCells:
    def test_rectangle_corners(self):
        r = shapes.rectangle((8, 8), (2, 2), 3, 2)
        corners = corner_cells(r)
        assert set(corners.coords()) == {(2, 2), (4, 2), (2, 3), (4, 3)}

    def test_single_cell_is_its_own_corner(self):
        s = CellSet.from_coords((4, 4), [(2, 2)])
        assert corner_cells(s) == s

    def test_l_shape_corners(self):
        # Definition 4: outside-neighbour in each dimension.  For an L of
        # thickness 1, every cell except the elbow has an outside
        # neighbour in both dimensions.
        l = shapes.l_shape((8, 8), (0, 0), 3, 3, 1)
        corners = set(corner_cells(l).coords())
        assert (0, 0) in corners          # the elbow cell: W and S are outside
        assert (2, 0) in corners and (0, 2) in corners  # arm tips

    def test_grid_edge_counts_as_outside(self):
        # A cell on the grid boundary has a ghost neighbour outside.
        s = shapes.rectangle((4, 4), (0, 0), 4, 4)  # whole grid
        corners = set(corner_cells(s).coords())
        assert corners == {(0, 0), (3, 0), (0, 3), (3, 3)}

    def test_interior_cells_are_not_corners(self):
        r = shapes.rectangle((8, 8), (1, 1), 4, 4)
        corners = corner_cells(r)
        assert (2, 2) not in corners and (2, 1) not in corners
