"""Unit tests for CellSet."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import CellSet


class TestConstruction:
    def test_from_coords(self):
        s = CellSet.from_coords((4, 4), [(0, 0), (1, 2)])
        assert len(s) == 2
        assert (0, 0) in s and (1, 2) in s and (2, 2) not in s

    def test_from_coords_out_of_range(self):
        with pytest.raises(GeometryError):
            CellSet.from_coords((4, 4), [(4, 0)])

    def test_empty_and_full(self):
        assert len(CellSet.empty((3, 3))) == 0
        assert len(CellSet.full((3, 3))) == 9
        assert not CellSet.empty((3, 3))
        assert CellSet.full((3, 3))

    def test_rejects_non_2d(self):
        with pytest.raises(GeometryError):
            CellSet(np.zeros(5, dtype=bool))

    def test_mask_is_readonly(self):
        s = CellSet.from_coords((3, 3), [(1, 1)])
        with pytest.raises(ValueError):
            s.mask[0, 0] = True

    def test_mask_copied_on_construction(self):
        src = np.zeros((3, 3), dtype=bool)
        s = CellSet(src)
        src[1, 1] = True
        assert (1, 1) not in s


class TestSetAlgebra:
    def setup_method(self):
        self.a = CellSet.from_coords((4, 4), [(0, 0), (1, 1)])
        self.b = CellSet.from_coords((4, 4), [(1, 1), (2, 2)])

    def test_union(self):
        assert len(self.a | self.b) == 3

    def test_intersection(self):
        assert (self.a & self.b).coords() == [(1, 1)]

    def test_difference(self):
        assert (self.a - self.b).coords() == [(0, 0)]

    def test_subset(self):
        assert (self.a & self.b) <= self.a
        assert not self.a <= self.b

    def test_disjoint(self):
        c = CellSet.from_coords((4, 4), [(3, 3)])
        assert self.a.isdisjoint(c)
        assert not self.a.isdisjoint(self.b)

    def test_mismatched_grids_rejected(self):
        other = CellSet.empty((5, 5))
        with pytest.raises(GeometryError):
            self.a.union(other)

    def test_equality_and_hash(self):
        twin = CellSet.from_coords((4, 4), [(1, 1), (0, 0)])
        assert twin == self.a
        assert hash(twin) == hash(self.a)
        assert self.a != self.b
        assert self.a != "not a cellset"


class TestGeometry:
    def test_bounding_box(self):
        s = CellSet.from_coords((6, 6), [(1, 2), (4, 3)])
        assert s.bounding_box() == (1, 2, 4, 3)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(GeometryError):
            CellSet.empty((3, 3)).bounding_box()

    def test_diameter(self):
        s = CellSet.from_coords((6, 6), [(0, 0), (3, 2)])
        assert s.diameter() == 5
        assert CellSet.empty((3, 3)).diameter() == 0
        assert CellSet.from_coords((3, 3), [(1, 1)]).diameter() == 0

    def test_translated(self):
        s = CellSet.from_coords((5, 5), [(1, 1), (2, 1)])
        t = s.translated(2, 3)
        assert set(t.coords()) == {(3, 4), (4, 4)}

    def test_translated_out_of_grid_raises(self):
        s = CellSet.from_coords((5, 5), [(4, 4)])
        with pytest.raises(GeometryError):
            s.translated(1, 0)

    def test_iteration_row_major(self):
        s = CellSet.from_coords((3, 3), [(2, 0), (0, 1), (0, 0)])
        assert s.coords() == [(0, 0), (0, 1), (2, 0)]
