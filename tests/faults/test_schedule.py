"""Unit tests for :class:`repro.faults.schedule.FaultSchedule`."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faults import FaultSchedule, FaultSet, staggered_crashes, uniform_random


class TestConstruction:
    def test_empty(self):
        s = FaultSchedule.empty()
        assert len(s) == 0
        assert not s
        assert s.batches() == ()
        assert s.crashed == frozenset()

    def test_batches_sorted_and_grouped(self):
        s = FaultSchedule([(5, (1, 1)), (2, (0, 0)), (5, (2, 2))])
        assert s.times == (2, 5)
        assert s.batches() == (
            (2, frozenset({(0, 0)})),
            (5, frozenset({(1, 1), (2, 2)})),
        )
        assert len(s) == 3
        assert s

    def test_at_builder(self):
        s = FaultSchedule.at(3, [(1, 2), (3, 4)])
        assert s.crashed == frozenset({(1, 2), (3, 4)})
        assert s.times == (3,)

    def test_time_must_be_positive(self):
        with pytest.raises(FaultModelError, match="time"):
            FaultSchedule([(0, (1, 1))])
        with pytest.raises(FaultModelError, match="time"):
            FaultSchedule([(-3, (1, 1))])

    def test_node_crashes_at_most_once(self):
        # exact duplicates merge ...
        s = FaultSchedule([(2, (1, 1)), (2, (1, 1))])
        assert len(s) == 1
        # ... conflicting times do not
        with pytest.raises(FaultModelError, match="crash twice"):
            FaultSchedule([(2, (1, 1)), (5, (1, 1))])

    def test_equality_and_hash(self):
        a = FaultSchedule([(2, (1, 1)), (4, (0, 3))])
        b = FaultSchedule([(4, (0, 3)), (2, (1, 1))])
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultSchedule([(2, (1, 1))])


class TestParse:
    def test_round_trip(self):
        s = FaultSchedule.parse("3:4,4;3:5,5;9:0,0")
        assert s.batches() == (
            (3, frozenset({(4, 4), (5, 5)})),
            (9, frozenset({(0, 0)})),
        )

    def test_empty_string(self):
        assert FaultSchedule.parse("") == FaultSchedule.empty()
        assert FaultSchedule.parse("  ") == FaultSchedule.empty()

    def test_bad_specs(self):
        for spec in ["3", "3:4", "x:1,2", "3:a,b", "3:1,2,3"]:
            with pytest.raises(FaultModelError):
                FaultSchedule.parse(spec)


class TestShapeAndFinal:
    def test_check_shape_accepts_and_chains(self):
        s = FaultSchedule([(2, (4, 4))])
        assert s.check_shape((5, 5)) is s

    def test_check_shape_rejects(self):
        s = FaultSchedule([(2, (5, 4))])
        with pytest.raises(FaultModelError, match="outside"):
            s.check_shape((5, 5))

    def test_final_faults_union(self):
        initial = FaultSet.from_coords((4, 4), [(0, 0)])
        s = FaultSchedule([(2, (1, 1)), (3, (0, 0))])  # (0,0) already down
        final = s.final_faults(initial)
        assert set(final) == {(0, 0), (1, 1)}


class TestStaggeredCrashes:
    def test_times_in_range_and_deterministic(self):
        crashes = uniform_random((10, 10), 7, np.random.default_rng(0))
        a = staggered_crashes(crashes, np.random.default_rng(1), max_time=6)
        b = staggered_crashes(crashes, np.random.default_rng(1), max_time=6)
        assert a == b
        assert a.crashed == frozenset(crashes)
        assert all(1 <= t <= 6 for t in a.times)

    def test_bad_window(self):
        crashes = uniform_random((10, 10), 3, np.random.default_rng(0))
        with pytest.raises(FaultModelError):
            staggered_crashes(crashes, np.random.default_rng(1), max_time=0)
        with pytest.raises(FaultModelError):
            staggered_crashes(
                crashes, np.random.default_rng(1), min_time=5, max_time=4
            )
