"""Unit tests for the fault-pattern generators."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faults import (
    clustered,
    combined,
    rectangle_outage,
    shaped,
    uniform_random,
)
from repro.geometry import is_orthoconvex, is_rectangle


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestUniformRandom:
    def test_exact_count(self, rng):
        f = uniform_random((20, 20), 37, rng)
        assert len(f) == 37

    def test_zero_faults(self, rng):
        assert len(uniform_random((10, 10), 0, rng)) == 0

    def test_all_faults(self, rng):
        assert len(uniform_random((4, 4), 16, rng)) == 16

    def test_count_validation(self, rng):
        with pytest.raises(FaultModelError):
            uniform_random((4, 4), 17, rng)
        with pytest.raises(FaultModelError):
            uniform_random((4, 4), -1, rng)

    def test_reproducible_from_seed(self):
        a = uniform_random((20, 20), 15, np.random.default_rng(5))
        b = uniform_random((20, 20), 15, np.random.default_rng(5))
        assert a == b

    def test_roughly_uniform_spread(self):
        # With many draws, each quadrant of the grid gets a fair share.
        rng = np.random.default_rng(7)
        counts = np.zeros(4)
        for _ in range(50):
            f = uniform_random((20, 20), 40, rng)
            for x, y in f:
                counts[(x >= 10) * 2 + (y >= 10)] += 1
        assert counts.min() > 0.7 * counts.max()


class TestClustered:
    def test_exact_count(self, rng):
        f = clustered((30, 30), 50, rng, clusters=3)
        assert len(f) == 50

    def test_tighter_than_uniform(self, rng):
        # Clustered faults produce larger faulty blocks on average: use
        # mean pairwise distance as a proxy for spatial concentration.
        def spread(fault_set):
            pts = np.array(list(fault_set), dtype=float)
            d = np.abs(pts[:, None, :] - pts[None, :, :]).sum(-1)
            return d.mean()

        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        tight = np.mean([spread(clustered((40, 40), 30, rng1, 2, 1.5)) for _ in range(5)])
        loose = np.mean([spread(uniform_random((40, 40), 30, rng2)) for _ in range(5)])
        assert tight < loose

    def test_parameter_validation(self, rng):
        with pytest.raises(FaultModelError):
            clustered((10, 10), 5, rng, clusters=0)
        with pytest.raises(FaultModelError):
            clustered((10, 10), 5, rng, spread=0.0)
        with pytest.raises(FaultModelError):
            clustered((4, 4), 20, rng)

    def test_dense_request_terminates(self, rng):
        # Nearly the whole grid: the widening retry loop must finish.
        f = clustered((6, 6), 30, rng, clusters=1, spread=0.5)
        assert len(f) == 30


class TestRectangleOutage:
    def test_block_is_rectangle(self, rng):
        f = rectangle_outage((20, 20), rng)
        assert is_rectangle(f.cells)

    def test_explicit_extent(self, rng):
        f = rectangle_outage((20, 20), rng, extent=(3, 5))
        x0, y0, x1, y1 = f.cells.bounding_box()
        assert (x1 - x0 + 1, y1 - y0 + 1) == (3, 5)

    def test_extent_validation(self, rng):
        with pytest.raises(FaultModelError):
            rectangle_outage((5, 5), rng, extent=(6, 2))


class TestShaped:
    @pytest.mark.parametrize("kind", ["rect", "L", "T", "+"])
    def test_orthoconvex_kinds(self, kind):
        f = shaped((16, 16), kind, (2, 2), (6, 5))
        assert is_orthoconvex(f.cells)

    @pytest.mark.parametrize("kind", ["U", "H"])
    def test_non_orthoconvex_kinds(self, kind):
        f = shaped((16, 16), kind, (2, 2), (7, 5))
        assert not is_orthoconvex(f.cells)

    def test_unknown_kind(self):
        with pytest.raises(FaultModelError):
            shaped((16, 16), "Z", (0, 0), (3, 3))


class TestCombined:
    def test_union_of_parts(self):
        a = shaped((16, 16), "rect", (0, 0), (2, 2))
        b = shaped((16, 16), "rect", (10, 10), (2, 2))
        assert len(combined([a, b])) == 8

    def test_empty_list_rejected(self):
        with pytest.raises(FaultModelError):
            combined([])
