"""Unit tests for FaultSet."""

import numpy as np
import pytest

from repro.errors import FaultModelError
from repro.faults import FaultSet


class TestConstruction:
    def test_from_coords(self):
        f = FaultSet.from_coords((5, 5), [(1, 1), (3, 2)])
        assert len(f) == 2 and (1, 1) in f

    def test_duplicates_merge(self):
        f = FaultSet.from_coords((5, 5), [(1, 1), (1, 1)])
        assert len(f) == 1

    def test_out_of_range_raises_fault_error(self):
        with pytest.raises(FaultModelError):
            FaultSet.from_coords((5, 5), [(5, 0)])

    def test_from_mask(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[2, 3] = True
        f = FaultSet.from_mask(mask)
        assert f.coords() if hasattr(f, "coords") else list(f) == [(2, 3)]

    def test_none_is_empty(self):
        f = FaultSet.none((4, 4))
        assert len(f) == 0 and not f


class TestAccessors:
    def test_shape_and_fraction(self):
        f = FaultSet.from_coords((10, 10), [(0, 0), (1, 1)])
        assert f.shape == (10, 10)
        assert f.fraction() == pytest.approx(0.02)

    def test_iteration(self):
        coords = [(0, 0), (2, 1)]
        f = FaultSet.from_coords((4, 4), coords)
        assert sorted(f) == coords

    def test_equality_and_hash(self):
        a = FaultSet.from_coords((4, 4), [(1, 1)])
        b = FaultSet.from_coords((4, 4), [(1, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != FaultSet.from_coords((4, 4), [(2, 2)])

    def test_union(self):
        a = FaultSet.from_coords((4, 4), [(0, 0)])
        b = FaultSet.from_coords((4, 4), [(1, 1)])
        assert len(a.union(b)) == 2

    def test_repr_mentions_count(self):
        assert "count=1" in repr(FaultSet.from_coords((4, 4), [(0, 0)]))
