"""Unit tests for flits and worm packets."""

import pytest

from repro.network import Flit, FlitKind, WormPacket


class TestFlitKind:
    def test_head_tail_flags(self):
        assert FlitKind.HEAD.is_head and not FlitKind.HEAD.is_tail
        assert FlitKind.TAIL.is_tail and not FlitKind.TAIL.is_head
        assert FlitKind.HEAD_TAIL.is_head and FlitKind.HEAD_TAIL.is_tail
        assert not FlitKind.BODY.is_head and not FlitKind.BODY.is_tail


class TestWormPacket:
    def test_flit_sequence_structure(self):
        p = WormPacket(1, (0, 0), (3, 3), length=4, inject_cycle=0)
        flits = list(p.flits())
        assert len(flits) == 4
        assert flits[0].kind is FlitKind.HEAD
        assert flits[-1].kind is FlitKind.TAIL
        assert all(f.kind is FlitKind.BODY for f in flits[1:-1])
        assert [f.index for f in flits] == [0, 1, 2, 3]

    def test_single_flit_packet(self):
        p = WormPacket(1, (0, 0), (1, 1), length=1, inject_cycle=0)
        flits = list(p.flits())
        assert len(flits) == 1 and flits[0].kind is FlitKind.HEAD_TAIL

    def test_two_flit_packet_has_no_body(self):
        p = WormPacket(1, (0, 0), (1, 1), length=2, inject_cycle=0)
        kinds = [f.kind for f in p.flits()]
        assert kinds == [FlitKind.HEAD, FlitKind.TAIL]

    def test_length_validation(self):
        with pytest.raises(ValueError):
            WormPacket(1, (0, 0), (1, 1), length=0, inject_cycle=0)

    def test_latency_lifecycle(self):
        p = WormPacket(1, (0, 0), (1, 1), length=2, inject_cycle=5)
        assert not p.delivered and p.latency is None
        p.finish_cycle = 17
        assert p.delivered and p.latency == 12
