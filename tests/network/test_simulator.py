"""Unit tests for the wormhole network simulator."""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.errors import RoutingError
from repro.faults import FaultSet, clustered
from repro.mesh import Mesh2D
from repro.network import (
    WormholeNetwork,
    WormPacket,
    block_detour_hops,
    clockwise_ring_hops,
    dateline_vc_policy,
    nearest_rank,
    uniform_traffic,
    xy_hops,
)
from repro.routing import BFSRouter, FaultModelView

RING = [(0, 0), (1, 0), (1, 1), (0, 1)]


def clean_view(n=8):
    return FaultModelView(Mesh2D(n, n), np.ones((n, n), dtype=bool))


class TestConstruction:
    def test_parameter_validation(self):
        m = Mesh2D(4, 4)
        with pytest.raises(RoutingError):
            WormholeNetwork(m, xy_hops(), num_vcs=0)
        with pytest.raises(RoutingError):
            WormholeNetwork(m, xy_hops(), buffer_depth=0)

    def test_bad_hop_function_detected(self):
        m = Mesh2D(4, 4)

        def teleport(at, dest):
            return dest  # not a link

        net = WormholeNetwork(m, teleport)
        p = WormPacket(0, (0, 0), (3, 3), length=2, inject_cycle=0)
        with pytest.raises(RoutingError):
            net.run([p])


class TestBasicTransport:
    def test_single_packet_minimal_latency(self):
        net = WormholeNetwork(Mesh2D(8, 8), xy_hops())
        p = WormPacket(0, (0, 0), (3, 0), length=1, inject_cycle=0)
        res = net.run([p])
        assert res.delivery_rate == 1.0
        assert not res.deadlocked
        # 3 hops, 1 flit: a handful of cycles, not dozens.
        assert p.latency is not None and p.latency <= 3 * 3

    def test_multi_flit_worm_delivers_in_order(self):
        net = WormholeNetwork(Mesh2D(8, 8), xy_hops(), buffer_depth=2)
        p = WormPacket(0, (0, 0), (4, 4), length=6, inject_cycle=0)
        res = net.run([p])
        assert p.delivered and p.flits_ejected == 6

    def test_local_delivery(self):
        net = WormholeNetwork(Mesh2D(4, 4), xy_hops())
        p = WormPacket(0, (2, 2), (2, 2), length=3, inject_cycle=5)
        res = net.run([p])
        assert p.delivered and p.latency == 0

    def test_injection_schedule_respected(self):
        net = WormholeNetwork(Mesh2D(8, 8), xy_hops())
        p = WormPacket(0, (0, 0), (2, 0), length=1, inject_cycle=10)
        res = net.run([p])
        assert p.start_cycle is not None and p.start_cycle >= 10

    def test_longer_packets_take_longer(self):
        lat = {}
        for length in (1, 8):
            net = WormholeNetwork(Mesh2D(8, 8), xy_hops())
            p = WormPacket(0, (0, 0), (5, 5), length=length, inject_cycle=0)
            net.run([p])
            lat[length] = p.latency
        assert lat[8] > lat[1]


class TestContentionAndDeadlock:
    def test_xy_under_load_never_deadlocks(self):
        view = clean_view()
        rng = np.random.default_rng(1)
        packets = uniform_traffic(view, 150, rng, packet_length=4, injection_rate=0.8)
        net = WormholeNetwork(Mesh2D(8, 8), xy_hops(), num_vcs=1, buffer_depth=2)
        res = net.run(packets)
        assert not res.deadlocked
        assert res.delivery_rate == 1.0

    def test_cyclic_routing_on_one_vc_deadlocks(self):
        hop = clockwise_ring_hops(RING)
        packets = [
            WormPacket(i, RING[i], RING[(i + 2) % 4], length=3, inject_cycle=0)
            for i in range(4)
        ]
        net = WormholeNetwork(
            Mesh2D(4, 4), hop, num_vcs=1, buffer_depth=1, watchdog=100
        )
        res = net.run(packets)
        assert res.deadlocked
        assert len(res.stuck) == 4

    def test_dateline_vcs_break_the_deadlock(self):
        hop = clockwise_ring_hops(RING)
        packets = [
            WormPacket(i, RING[i], RING[(i + 2) % 4], length=3, inject_cycle=0)
            for i in range(4)
        ]
        net = WormholeNetwork(
            Mesh2D(4, 4),
            hop,
            num_vcs=2,
            buffer_depth=1,
            vc_policy=dateline_vc_policy(RING),
            watchdog=200,
        )
        res = net.run(packets)
        assert not res.deadlocked
        assert res.delivery_rate == 1.0

    def test_more_vcs_alone_do_not_fix_cyclic_routing(self):
        # Extra VCs without a discipline only postpone the cycle: worms
        # long enough to span three ring links (farther than the VC
        # count can absorb) close the wait graph again.
        hop = clockwise_ring_hops(RING)
        packets = [
            WormPacket(i, RING[i], RING[(i + 3) % 4], length=4, inject_cycle=0)
            for i in range(4)
        ]
        net = WormholeNetwork(
            Mesh2D(4, 4), hop, num_vcs=2, buffer_depth=1, watchdog=150
        )
        res = net.run(packets)
        assert res.deadlocked


class TestFaultyMeshTransport:
    def test_xy_drops_at_fault_regions(self):
        m = Mesh2D(8, 8)
        res_label = label_mesh(m, FaultSet.from_coords((8, 8), [(4, 0), (4, 1)]))
        view = FaultModelView.from_regions(res_label)
        hop = xy_hops()
        # XY ignores faults; packets whose path crosses the region stall
        # on... actually the hop function routes into disabled nodes,
        # which the detour hop function avoids; use block_detour_hops.
        detour = block_detour_hops(FaultModelView.from_blocks(res_label))
        net = WormholeNetwork(m, detour, num_vcs=2, buffer_depth=2)
        p = WormPacket(0, (0, 0), (7, 0), length=3, inject_cycle=0)
        res = net.run([p])
        assert p.delivered

    def test_detour_traffic_on_clustered_faults(self):
        rng = np.random.default_rng(5)
        m = Mesh2D(12, 12)
        faults = clustered(m.shape, 10, rng, clusters=1, spread=1.2)
        res_label = label_mesh(m, faults)
        view = FaultModelView.from_blocks(res_label)
        net = WormholeNetwork(
            m, block_detour_hops(view), num_vcs=2, buffer_depth=2, watchdog=500
        )
        packets = uniform_traffic(view, 60, rng, packet_length=3, injection_rate=0.3)
        result = net.run(packets)
        # The memoryless detour can drop corner cases but must move the
        # bulk of the traffic without deadlocking the watchdog.
        assert result.delivery_rate > 0.9


class TestNetworkResult:
    def test_metrics_on_empty_run(self):
        net = WormholeNetwork(Mesh2D(4, 4), xy_hops())
        res = net.run([])
        assert res.delivery_rate == 1.0
        assert res.throughput == 0.0
        # Latency statistics over zero deliveries are nan, same
        # convention as BatchedResult.
        assert np.isnan(res.mean_latency)
        assert np.isnan(res.p50_latency)
        assert np.isnan(res.p95_latency)
        assert np.isnan(res.p99_latency)
        assert res.latencies.size == 0

    def test_throughput_accounting(self):
        net = WormholeNetwork(Mesh2D(8, 8), xy_hops())
        packets = [
            WormPacket(i, (0, i), (7, i), length=4, inject_cycle=0) for i in range(4)
        ]
        res = net.run(packets)
        assert res.throughput == pytest.approx(16 / res.cycles)

    def test_latency_percentiles(self):
        net = WormholeNetwork(Mesh2D(8, 8), xy_hops())
        rng = np.random.default_rng(12)
        packets = uniform_traffic(clean_view(), 80, rng, injection_rate=0.5)
        res = net.run(packets)
        lat = res.latencies
        assert lat.size == len(res.delivered)
        assert res.mean_latency == pytest.approx(float(lat.mean()))
        assert res.p50_latency == nearest_rank(lat, 50)
        assert res.p95_latency == nearest_rank(lat, 95)
        assert res.p99_latency == nearest_rank(lat, 99)
        assert res.p50_latency <= res.p95_latency <= res.p99_latency
