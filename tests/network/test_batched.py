"""Batched store-and-forward engine: semantics, determinism, telemetry.

The bit-for-bit oracle equivalence lives in
``tests/properties/test_batched_traffic_props.py``; this file pins the
concrete behaviours the property grid cannot name individually —
latency accounting, drop reasons, contention priority, empty-run
semantics, the synthetic traffic generators, and the sweep/telemetry
wiring.
"""

import numpy as np
import pytest

from repro.core import label_mesh
from repro.errors import RoutingError
from repro.faults import FaultSet
from repro.mesh import Mesh2D
from repro.network import (
    BatchedNetwork,
    BatchedTraffic,
    TRAFFIC_PATTERNS,
    injection_sweep,
    nearest_rank,
    synthetic_traffic,
)
from repro.obs import JSONLSink, MemorySink, MetricsRegistry, Telemetry
from repro.obs.events import validate_event
from repro.obs.summarize import format_summary, summarize_trace
from repro.routing import FaultModelView

W = H = 8


def clean_view(n=W):
    return FaultModelView(Mesh2D(n, n), np.ones((n, n), dtype=bool))


def faulty_views(coords, n=W):
    res = label_mesh(Mesh2D(n, n), FaultSet.from_coords((n, n), coords))
    return FaultModelView.from_blocks(res), FaultModelView.from_regions(res)


def one_packet(view, source, dest, kernel="detour", inject=0, **kw):
    net = BatchedNetwork(view, kernel=kernel, **kw)
    return net.run(BatchedTraffic.from_pairs([(source, dest)], inject=[inject]))


class TestSinglePacket:
    def test_xy_latency_is_manhattan(self):
        res = one_packet(clean_view(), (0, 0), (5, 3), kernel="xy")
        assert res.num_delivered == 1
        assert int(res.hops[0]) == 8
        assert int(res.stalls[0]) == 0
        # One hop per cycle, no contention: latency equals distance.
        assert res.latencies.tolist() == [8]
        assert res.mean_latency == 8.0

    def test_injection_offset_excluded_from_latency(self):
        res = one_packet(clean_view(), (1, 1), (4, 1), kernel="xy", inject=100)
        assert res.num_delivered == 1
        assert int(res.finish[0] - res.inject[0]) == 3
        assert res.latencies.tolist() == [3]

    def test_local_delivery_is_free(self):
        res = one_packet(clean_view(), (2, 2), (2, 2), inject=5)
        assert res.num_delivered == 1
        assert int(res.hops[0]) == 0
        assert res.latencies.tolist() == [0]
        assert int(res.finish[0]) == 5

    def test_xy_blocked_by_fault_detour_survives(self):
        # Faults spanning the whole middle column block every XY path
        # across it; the rectangle-detour kernel walks around the block.
        coords = [(4, y) for y in range(1, H)]
        blocks, _ = faulty_views(coords)
        xy = one_packet(blocks, (0, 0), (7, 0), kernel="xy")
        assert xy.num_delivered == 1  # row 0 stays open for XY
        xy2 = one_packet(blocks, (0, 4), (7, 4), kernel="xy")
        assert xy2.num_delivered == 0
        assert xy2.drop_counts() == {"BLOCKED": 1}
        det = one_packet(blocks, (0, 4), (7, 4), kernel="detour")
        assert det.num_delivered == 1
        assert int(det.hops[0]) > 7  # detour costs extra hops

    def test_budget_drop(self):
        res = one_packet(clean_view(), (0, 0), (7, 7), kernel="xy", max_hops=3)
        assert res.num_delivered == 0
        assert res.drop_counts() == {"BUDGET": 1}
        assert int(res.hops[0]) == 3

    def test_bad_endpoint_drop(self):
        blocks, _ = faulty_views([(3, 3)])
        assert not blocks.is_enabled((3, 3))
        res = one_packet(blocks, (3, 3), (0, 0))
        assert res.drop_counts() == {"BAD_ENDPOINT": 1}
        res = one_packet(blocks, (0, 0), (3, 3))
        assert res.drop_counts() == {"BAD_ENDPOINT": 1}
        assert int(res.start[0]) == -1

    def test_stuck_at_horizon(self):
        net = BatchedNetwork(clean_view(), kernel="xy")
        traffic = BatchedTraffic.from_pairs([((0, 0), (7, 7))])
        res = net.run(traffic, max_cycles=4)
        assert res.num_delivered == 0
        assert res.num_stuck == 1
        assert res.delivery_rate == 0.0


class TestContention:
    def test_oldest_packet_wins_the_link(self):
        # Both packets want the (0,0)->E link on cycle 0; packet ids are
        # assigned in injection order, so packet 0 is older and must win.
        traffic = BatchedTraffic.from_pairs(
            [((0, 0), (3, 0)), ((0, 0), (2, 0))]
        )
        res = BatchedNetwork(clean_view(), kernel="xy").run(traffic)
        assert res.num_delivered == 2
        assert int(res.stalls[0]) == 0
        assert int(res.stalls[1]) >= 1
        assert int(res.latencies[1]) > 2  # paid the stall

    def test_opposite_directions_share_no_link(self):
        # Links are directed: (0,0)->(1,0) and (1,0)->(0,0) both move.
        traffic = BatchedTraffic.from_pairs(
            [((0, 0), (1, 0)), ((1, 0), (0, 0))]
        )
        res = BatchedNetwork(clean_view(), kernel="xy").run(traffic)
        assert res.num_delivered == 2
        assert res.stalls.tolist() == [0, 0]
        assert res.latencies.tolist() == [1, 1]


class TestDeterminism:
    def _traffic(self, view, n=2000, seed=11):
        return synthetic_traffic(
            view, n, np.random.default_rng(seed), injection_rate=4.0
        )

    @pytest.mark.parametrize("kernel", ["xy", "detour"])
    def test_rerun_is_identical(self, kernel):
        blocks, _ = faulty_views([(2, 2), (2, 3), (5, 5)])
        traffic = self._traffic(blocks)
        net = BatchedNetwork(blocks, kernel=kernel)
        assert net.run(traffic).equals(net.run(traffic))

    @pytest.mark.parametrize("kernel", ["xy", "detour"])
    def test_compaction_threshold_is_invisible(self, kernel):
        # The tombstone/compaction lane machinery must not be
        # observable: an engine that compacts every cycle and one that
        # never compacts agree bit for bit.
        _, regions = faulty_views([(2, 2), (2, 3), (5, 5)])
        traffic = self._traffic(regions)
        eager = BatchedNetwork(regions, kernel=kernel)
        eager._COMPACT_FRAC = 1
        lazy = BatchedNetwork(regions, kernel=kernel)
        lazy._COMPACT_FRAC = 10**9
        assert eager.run(traffic).equals(lazy.run(traffic))

    @pytest.mark.parametrize("kernel", ["xy", "detour"])
    def test_matches_reference_oracle(self, kernel):
        blocks, _ = faulty_views([(3, 3), (3, 4), (4, 3), (6, 1)])
        traffic = self._traffic(blocks, n=1500, seed=23)
        fast = BatchedNetwork(blocks, kernel=kernel).run(traffic)
        slow = BatchedNetwork(blocks, kernel=kernel, engine="reference").run(
            traffic
        )
        assert fast.equals(slow), fast.diff_summary(slow)

    def test_unsorted_injection_rejected_gracefully(self):
        # from_pairs with out-of-order inject cycles still runs (the
        # engine sorts admissions), and equals the reference.
        pairs = [((0, 0), (5, 5)), ((7, 7), (1, 1)), ((3, 0), (3, 7))]
        traffic = BatchedTraffic.from_pairs(pairs, inject=[9, 0, 4])
        view = clean_view()
        fast = BatchedNetwork(view).run(traffic)
        slow = BatchedNetwork(view, engine="reference").run(traffic)
        assert fast.equals(slow)
        assert fast.num_delivered == 3

    def test_unknown_engine_and_kernel(self):
        with pytest.raises(RoutingError):
            BatchedNetwork(clean_view(), engine="quantum")
        with pytest.raises(RoutingError):
            BatchedNetwork(clean_view(), kernel="warp")


class TestResultStats:
    def test_empty_run_semantics(self):
        res = BatchedNetwork(clean_view()).run(BatchedTraffic.from_pairs([]))
        assert res.num_packets == 0
        assert res.delivery_rate == 1.0  # vacuous, matches NetworkResult
        assert np.isnan(res.mean_latency)
        assert np.isnan(res.p50_latency)
        assert np.isnan(res.p95_latency)
        assert np.isnan(res.p99_latency)
        assert res.latencies.size == 0
        assert res.drop_counts() == {}
        assert res.throughput == 0.0

    def test_nearest_rank(self):
        vals = np.array([10, 20, 30, 40], dtype=np.int64)
        assert nearest_rank(vals, 50) == 20.0
        assert nearest_rank(vals, 95) == 40.0
        assert nearest_rank(np.array([7]), 99) == 7.0
        assert np.isnan(nearest_rank(np.array([], dtype=np.int64), 50))

    def test_percentiles_from_run(self):
        view = clean_view()
        traffic = synthetic_traffic(
            view, 500, np.random.default_rng(3), injection_rate=2.0
        )
        res = BatchedNetwork(view, kernel="xy").run(traffic)
        lat = res.latencies
        assert res.p50_latency == nearest_rank(lat, 50)
        assert res.p95_latency == nearest_rank(lat, 95)
        assert res.p50_latency <= res.p95_latency <= res.p99_latency
        assert res.throughput == pytest.approx(res.num_delivered / res.cycles)


class TestTrafficGenerators:
    @pytest.mark.parametrize("pattern", TRAFFIC_PATTERNS)
    def test_endpoints_enabled_and_distinct(self, pattern):
        _, regions = faulty_views([(2, 2), (2, 3), (3, 2), (6, 6)])
        t = synthetic_traffic(
            regions, 400, np.random.default_rng(5), pattern=pattern
        )
        assert len(t) == 400 and t.pattern == pattern
        assert regions.enabled[t.sx, t.sy].all()
        assert regions.enabled[t.dx, t.dy].all()
        assert not ((t.sx == t.dx) & (t.sy == t.dy)).any()
        assert (np.diff(t.inject) >= 0).all()

    def test_transpose_destinations(self):
        t = synthetic_traffic(
            clean_view(), 200, np.random.default_rng(1), pattern="transpose"
        )
        assert (t.dx == t.sy).all() and (t.dy == t.sx).all()

    def test_bit_complement_destinations(self):
        t = synthetic_traffic(
            clean_view(), 200, np.random.default_rng(1), pattern="bit_complement"
        )
        assert (t.dx == W - 1 - t.sx).all()
        assert (t.dy == H - 1 - t.sy).all()

    def test_hotspot_concentrates_traffic(self):
        t = synthetic_traffic(
            clean_view(),
            1000,
            np.random.default_rng(2),
            pattern="hotspot",
            hotspot_fraction=0.9,
            num_hotspots=2,
        )
        flat = t.dx * H + t.dy
        _, counts = np.unique(flat, return_counts=True)
        top2 = np.sort(counts)[-2:].sum()
        assert top2 >= 700  # ~90% minus source-collision redraws

    def test_injection_rate_shapes_arrivals(self):
        rng = np.random.default_rng(9)
        slow = synthetic_traffic(clean_view(), 500, rng, injection_rate=0.5)
        rng = np.random.default_rng(9)
        fast = synthetic_traffic(clean_view(), 500, rng, injection_rate=8.0)
        assert slow.inject[-1] > fast.inject[-1]

    def test_generator_determinism(self):
        a = synthetic_traffic(clean_view(), 300, np.random.default_rng(4))
        b = synthetic_traffic(clean_view(), 300, np.random.default_rng(4))
        for col in ("sx", "sy", "dx", "dy", "inject"):
            assert np.array_equal(getattr(a, col), getattr(b, col))

    def test_rejects_bad_arguments(self):
        view = clean_view()
        rng = np.random.default_rng(0)
        with pytest.raises(RoutingError):
            synthetic_traffic(view, 10, rng, pattern="tornado")
        with pytest.raises(RoutingError):
            synthetic_traffic(view, 10, rng, injection_rate=0.0)
        with pytest.raises(RoutingError):
            synthetic_traffic(view, -1, rng)
        tiny = FaultModelView(Mesh2D(2, 2), np.zeros((2, 2), dtype=bool))
        with pytest.raises(RoutingError):
            synthetic_traffic(tiny, 10, rng)


class TestSweepAndTelemetry:
    def _sweep(self, telemetry=None):
        blocks, _ = faulty_views([(3, 3), (3, 4)])
        return injection_sweep(
            blocks,
            rates=[0.25, 4.0],
            num_packets=300,
            seed=7,
            kernel="xy",
            telemetry=telemetry,
        )

    def test_curve_shape(self):
        curve = self._sweep()
        assert len(curve.points) == 2
        assert curve.peak_throughput > 0
        for point in curve.points:
            assert point.packets == 300
            assert point.delivered + point.dropped + point.stuck == 300

    def test_events_validate_against_schemas(self):
        sink = MemorySink()
        self._sweep(telemetry=Telemetry(sinks=(sink,)))
        sweeps = sink.events("traffic_sweep")
        sats = sink.events("saturation_point")
        assert len(sweeps) == 2 and len(sats) == 1
        for event in sweeps + sats:
            validate_event(event)  # raises on schema drift
        assert {e.fields["rate"] for e in sweeps} == {0.25, 4.0}

    def test_histograms_populated(self):
        reg = MetricsRegistry()
        curve = self._sweep(telemetry=Telemetry(metrics=reg))
        delivered = sum(p.delivered for p in curve.points)
        lat = reg.histogram("packet_latency_cycles")
        assert lat.count == delivered
        occ = reg.histogram("link_occupancy")
        assert occ.count > 0
        assert occ.min >= 1.0  # only links with demand are observed

    def test_summarize_reports_routing_section(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        self._sweep(telemetry=Telemetry(sinks=(sink,)))
        sink.close()
        summary = summarize_trace(path)
        assert summary.routing  # keyed "view/kernel/pattern"
        key = next(iter(summary.routing))
        assert "xy" in key and "uniform" in key
        assert "routing" in format_summary(summary).lower()
