"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestLabelCommand:
    def test_basic_run(self, capsys):
        rc = main(["label", "--size", "16", "--faults", "8", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "num_blocks" in out and "enabled_ratio" in out

    def test_verify_flag(self, capsys):
        rc = main(
            ["label", "--size", "16", "--faults", "8", "--seed", "1", "--verify"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "[ok ] theorem 1" in out

    def test_definition_and_backend_options(self, capsys):
        rc = main(
            [
                "label",
                "--size",
                "12",
                "--faults",
                "5",
                "--definition",
                "2a",
                "--backend",
                "distributed",
                "--no-art",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "definition: 2a" in out
        assert "backend: distributed" in out

    def test_torus_and_clustered(self, capsys):
        rc = main(
            ["label", "--size", "16", "--faults", "10", "--torus", "--clustered"]
        )
        assert rc == 0

    def test_svg_export(self, tmp_path, capsys):
        target = tmp_path / "out.svg"
        rc = main(
            ["label", "--size", "10", "--faults", "4", "--svg", str(target)]
        )
        assert rc == 0
        assert target.read_text().startswith("<?xml")


class TestOtherCommands:
    def test_fig5_small(self, capsys):
        rc = main(
            [
                "fig5",
                "--size",
                "20",
                "--trials",
                "2",
                "--f-max",
                "10",
                "--f-step",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rounds(FB)" in out

    def test_route(self, capsys):
        rc = main(
            ["route", "--size", "16", "--faults", "10", "--pairs", "30", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bfs-oracle" in out and "f-ring" in out

    def test_route_rejects_torus(self, capsys):
        rc = main(["route", "--size", "16", "--torus"])
        assert rc == 2

    def test_density(self, capsys):
        rc = main(
            [
                "density",
                "--size",
                "16",
                "--trials",
                "2",
                "--densities",
                "0.0",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "largest blk" in out

    def test_partition(self, capsys):
        rc = main(["partition", "--size", "16", "--faults", "6", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "single polygon" in out

    def test_partition_no_faults(self, capsys):
        rc = main(["partition", "--size", "8", "--faults", "0"])
        assert rc == 0
        assert "no faults" in capsys.readouterr().out
