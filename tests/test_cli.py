"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestLabelCommand:
    def test_basic_run(self, capsys):
        rc = main(["label", "--size", "16", "--faults", "8", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "num_blocks" in out and "enabled_ratio" in out

    def test_verify_flag(self, capsys):
        rc = main(
            ["label", "--size", "16", "--faults", "8", "--seed", "1", "--verify"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "[ok ] theorem 1" in out

    def test_definition_and_backend_options(self, capsys):
        rc = main(
            [
                "label",
                "--size",
                "12",
                "--faults",
                "5",
                "--definition",
                "2a",
                "--backend",
                "distributed",
                "--no-art",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "definition: 2a" in out
        assert "backend: distributed" in out

    def test_torus_and_clustered(self, capsys):
        rc = main(
            ["label", "--size", "16", "--faults", "10", "--torus", "--clustered"]
        )
        assert rc == 0

    def test_svg_export(self, tmp_path, capsys):
        target = tmp_path / "out.svg"
        rc = main(
            ["label", "--size", "10", "--faults", "4", "--svg", str(target)]
        )
        assert rc == 0
        assert target.read_text().startswith("<?xml")


class TestOtherCommands:
    def test_fig5_small(self, capsys):
        rc = main(
            [
                "fig5",
                "--size",
                "20",
                "--trials",
                "2",
                "--f-max",
                "10",
                "--f-step",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rounds(FB)" in out

    def test_route(self, capsys):
        rc = main(
            ["route", "--size", "16", "--faults", "10", "--pairs", "30", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bfs-oracle" in out and "f-ring" in out

    def test_route_rejects_torus(self, capsys):
        rc = main(["route", "--size", "16", "--torus"])
        assert rc == 2

    def test_density(self, capsys):
        rc = main(
            [
                "density",
                "--size",
                "16",
                "--trials",
                "2",
                "--densities",
                "0.0",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "largest blk" in out

    def test_partition(self, capsys):
        rc = main(["partition", "--size", "16", "--faults", "6", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "single polygon" in out

    def test_partition_no_faults(self, capsys):
        rc = main(["partition", "--size", "8", "--faults", "0"])
        assert rc == 0
        assert "no faults" in capsys.readouterr().out


class TestLabelTelemetryFlags:
    def _label(self, tmp_path, *extra):
        return main(
            [
                "label", "--size", "12", "--faults", "6", "--seed", "1",
                "--backend", "distributed", "--no-art",
                "--fault-schedule", "3:4,4",
                *extra,
            ]
        )

    def test_trace_out_is_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import validate_jsonl

        trace = tmp_path / "trace.jsonl"
        assert self._label(tmp_path, "--trace-out", str(trace)) == 0
        assert validate_jsonl(str(trace)) > 0

    def test_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert self._label(tmp_path, "--metrics-out", str(metrics)) == 0
        snap = json.loads(metrics.read_text())
        assert any(k.startswith("engine_messages_total") for k in snap["counters"])

    def test_spans_out_is_valid_chrome_trace(self, tmp_path, capsys):
        from repro.obs import load_chrome_trace

        spans = tmp_path / "spans.json"
        assert self._label(tmp_path, "--spans-out", str(spans)) == 0
        data = load_chrome_trace(str(spans))
        assert any(e["name"] == "phase_unsafe" for e in data["traceEvents"])

    def test_stats_out(self, tmp_path, capsys):
        stats = tmp_path / "stats.json"
        assert self._label(tmp_path, "--stats-out", str(stats)) == 0
        payload = json.loads(stats.read_text())
        assert payload["summary"]["backend"] == "distributed"
        phase1 = payload["stats_phase1"]
        assert phase1["total_messages"] == sum(phase1["messages_per_round"])
        assert len(phase1["epochs"]) == 2

    def test_debug_log_level_adds_node_flips(self, tmp_path, capsys):
        info = tmp_path / "info.jsonl"
        debug = tmp_path / "debug.jsonl"
        assert self._label(tmp_path, "--trace-out", str(info)) == 0
        assert (
            self._label(
                tmp_path, "--trace-out", str(debug), "--log-level", "debug"
            )
            == 0
        )
        names = lambda p: {
            json.loads(line)["name"] for line in p.read_text().splitlines()
        }
        assert "node_flip" not in names(info)
        assert "node_flip" in names(debug)


class TestServeCommand:
    def _serve_thread(self, argv):
        import threading

        result = {}

        def run():
            result["rc"] = main(argv)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread, result

    def test_serve_tcp_round_trip(self, tmp_path, capsys):
        import time

        from repro.service import ServiceClient

        trace = tmp_path / "serve.jsonl"
        thread, result = self._serve_thread(
            [
                "serve", "--size", "20", "--faults", "6", "--seed", "3",
                "--port", "0", "--max-requests", "3",
                "--trace-out", str(trace),
            ]
        )
        # The ephemeral port is printed on startup; poll the captured
        # stdout until the listening line appears.
        host = port = None
        for _ in range(200):
            out = capsys.readouterr().out
            for line in out.splitlines():
                if line.startswith("listening on "):
                    addr = line.split()[-1]
                    host, port = addr.rsplit(":", 1)
            if host is not None:
                break
            time.sleep(0.05)
        assert host is not None, "server never printed its address"
        with ServiceClient.connect_tcp(host, int(port)) as client:
            client.ping()
            assert client.update(inject=[(10, 10)])["injected"] == [[10, 10]]
            assert client.stats()["faults"] == 7
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["rc"] == 0

        from repro.obs import validate_jsonl

        assert validate_jsonl(str(trace)) > 0

    def test_serve_unix_socket(self, tmp_path, capsys):
        import os
        import socket as socket_module
        import time

        if not hasattr(socket_module, "AF_UNIX"):
            pytest.skip("no unix sockets on this platform")
        from repro.service import ServiceClient

        path = str(tmp_path / "repro.sock")
        thread, result = self._serve_thread(
            ["serve", "--size", "16", "--unix", path, "--max-requests", "2"]
        )
        for _ in range(200):
            if os.path.exists(path):
                break
            time.sleep(0.05)
        with ServiceClient.connect_unix(path) as client:
            client.update(inject=[(5, 5)])
            assert client.query_nodes([(5, 5)])[0]["status"] == "faulty"
        thread.join(timeout=10)
        assert result["rc"] == 0
        assert not os.path.exists(path)  # socket file cleaned up

    def _wait_for_address(self, capsys, collected=None):
        import time

        host = port = None
        lines = collected if collected is not None else []
        for _ in range(200):
            out = capsys.readouterr().out
            lines.extend(out.splitlines())
            for line in lines:
                if line.startswith("listening on "):
                    addr = line.split()[-1]
                    host, port = addr.rsplit(":", 1)
            if host is not None:
                return host, int(port)
            time.sleep(0.05)
        raise AssertionError("server never printed its address")

    def test_serve_durable_then_recover(self, tmp_path, capsys):
        from repro.service import ServiceClient

        wal_dir = str(tmp_path / "wal")
        base = [
            "serve", "--size", "16", "--port", "0",
            "--wal-dir", wal_dir, "--snapshot-every", "2",
        ]
        thread, result = self._serve_thread(base + ["--max-requests", "3"])
        host, port = self._wait_for_address(capsys)
        with ServiceClient.connect_tcp(host, port) as client:
            client.update(inject=[(3, 3)])
            client.update(inject=[(7, 7)])
            client.update(repair=[(3, 3)])
        thread.join(timeout=10)
        assert result["rc"] == 0

        # Restart over the same WAL directory: recovery replays the
        # snapshot + tail, verifies bit-for-bit, and keeps serving.
        thread, result = self._serve_thread(
            base + ["--recover", "--max-requests", "2"]
        )
        lines = []
        host, port = self._wait_for_address(capsys, lines)
        banner = [l for l in lines if l.startswith("recovered version ")]
        assert banner and "verified bit-for-bit" in banner[0]
        with ServiceClient.connect_tcp(host, port) as client:
            assert client.query_nodes([(7, 7)])[0]["status"] == "faulty"
            assert client.query_nodes([(3, 3)])[0]["status"] != "faulty"
        thread.join(timeout=10)
        assert result["rc"] == 0

    def test_serve_refuses_stale_wal_dir_without_recover(
        self, tmp_path, capsys
    ):
        from repro.core.status import SafetyDefinition
        from repro.mesh import Mesh2D
        from repro.service import LabelingService

        wal_dir = str(tmp_path / "wal")
        svc = LabelingService(Mesh2D(16, 16), wal_dir=wal_dir)
        svc.update(inject=[(1, 1)])
        svc.finalize()
        rc = main(
            ["serve", "--size", "16", "--port", "0", "--wal-dir", wal_dir]
        )
        out = capsys.readouterr().out
        assert rc == 2
        assert "already holds durability state" in out

    def test_recover_requires_wal_dir(self, capsys):
        rc = main(["serve", "--size", "16", "--port", "0", "--recover"])
        assert rc == 2
        assert "--recover needs --wal-dir" in capsys.readouterr().out

    def test_recover_wrong_topology_fails_loud(self, tmp_path, capsys):
        from repro.mesh import Mesh2D
        from repro.service import LabelingService

        wal_dir = str(tmp_path / "wal")
        svc = LabelingService(
            Mesh2D(16, 16), wal_dir=wal_dir, snapshot_every=1
        )
        svc.update(inject=[(1, 1)])
        svc.finalize()
        rc = main(
            [
                "serve", "--size", "32", "--port", "0",
                "--wal-dir", wal_dir, "--recover",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "recovery failed" in out


class TestObsCommand:
    def _traced(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "label", "--size", "12", "--faults", "6", "--seed", "1",
                "--backend", "distributed", "--no-art",
                "--fault-schedule", "3:4,4",
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        return trace

    def test_summarize(self, tmp_path, capsys):
        trace = self._traced(tmp_path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "run [engine=sync phase=unsafe]" in out
        assert "epochs" in out

    def test_summarize_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 1

    def test_validate_events(self, tmp_path, capsys):
        trace = self._traced(tmp_path)
        capsys.readouterr()
        assert main(["obs", "validate", str(trace)]) == 0
        assert "events ok" in capsys.readouterr().out

    def test_validate_rejects_bad_events(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "bogus", "t": 0, "level": "info", "fields": {}}\n')
        assert main(["obs", "validate", str(bad)]) == 1

    def test_validate_spans(self, tmp_path, capsys):
        spans = tmp_path / "spans.json"
        rc = main(
            [
                "label", "--size", "12", "--faults", "6", "--seed", "1",
                "--no-art", "--spans-out", str(spans),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["obs", "validate", str(spans)]) == 0
        assert "trace events ok" in capsys.readouterr().out

    def test_validate_kind_override(self, tmp_path, capsys):
        trace = self._traced(tmp_path)
        capsys.readouterr()
        # Forcing the wrong kind must fail loudly, not mislabel success.
        assert main(["obs", "validate", str(trace), "--kind", "spans"]) == 1


class TestServeAdminPlane:
    def _serve_thread(self, argv):
        import threading

        result = {}

        def run():
            result["rc"] = main(argv)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread, result

    def _wait_for(self, capsys, prefixes):
        import time

        found = {}
        lines = []
        for _ in range(200):
            lines.extend(capsys.readouterr().out.splitlines())
            for line in lines:
                for prefix in prefixes:
                    if line.startswith(prefix):
                        found[prefix] = line.split()[-1]
            if len(found) == len(prefixes):
                return found
            time.sleep(0.05)
        raise AssertionError(f"server never printed {prefixes}: {lines}")

    def _get(self, addr, path):
        import http.client

        host, port = addr.rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=5)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()

    def test_admin_plane_round_trip(self, tmp_path, capsys):
        import json

        from repro.obs import parse_prometheus
        from repro.service import ServiceClient

        thread, result = self._serve_thread(
            [
                "serve", "--size", "16", "--faults", "4", "--seed", "2",
                "--port", "0", "--admin-port", "0", "--max-requests", "3",
            ]
        )
        found = self._wait_for(capsys, ["listening on ", "admin on "])
        host, port = found["listening on "].rsplit(":", 1)
        admin = found["admin on "]

        # Liveness and readiness come up before any request.
        status, body = self._get(admin, "/healthz")
        assert status == 200 and body == "ok\n"
        status, body = self._get(admin, "/readyz")
        assert status == 200 and body == "ready\n"

        with ServiceClient.connect_tcp(host, int(port)) as client:
            client.ping()
            client.update(inject=[(5, 5)])

            # A live scrape parses as Prometheus text and carries the
            # request counters the dispatch path incremented.
            status, text = self._get(admin, "/metrics")
            assert status == 200
            parsed = parse_prometheus(text)
            counters = parsed["counters"]
            assert counters['service_requests{op="ping",outcome="ok"}'] == 1.0
            assert counters['service_requests{op="update",outcome="ok"}'] == 1.0

            # /varz is the live stats document, SLO included.
            status, body = self._get(admin, "/varz")
            assert status == 200
            varz = json.loads(body)
            assert varz["faults"] == 5
            assert varz["slo"]["count"] == 2 and varz["slo"]["errors"] == 0

            status, _ = self._get(admin, "/nope")
            assert status == 404

            client.stats()  # third request: server exits afterwards
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["rc"] == 0

    def test_admin_readyz_gates_on_unverified_recovery(self, tmp_path, capsys):
        """A durable restart without verification must come up
        NOT-ready until recovery verification has passed; the default
        recovery path verifies, so readiness is immediate here."""
        from repro.service import ServiceClient

        wal_dir = str(tmp_path / "wal")
        base = [
            "serve", "--size", "16", "--port", "0",
            "--wal-dir", wal_dir, "--snapshot-every", "2",
        ]
        thread, result = self._serve_thread(base + ["--max-requests", "1"])
        found = self._wait_for(capsys, ["listening on "])
        host, port = found["listening on "].rsplit(":", 1)
        with ServiceClient.connect_tcp(host, int(port)) as client:
            client.update(inject=[(3, 3)])
        thread.join(timeout=10)
        assert result["rc"] == 0

        thread, result = self._serve_thread(
            base + ["--recover", "--admin-port", "0", "--max-requests", "1"]
        )
        found = self._wait_for(capsys, ["listening on ", "admin on "])
        status, body = self._get(found["admin on "], "/readyz")
        assert status == 200 and body == "ready\n"
        host, port = found["listening on "].rsplit(":", 1)
        with ServiceClient.connect_tcp(host, int(port)) as client:
            client.ping()
        thread.join(timeout=10)
        assert result["rc"] == 0


class TestObsCompareStitchCommands:
    def test_compare_reports_regression(self, tmp_path, capsys):
        import json

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"latency": {"p99": 100.0}}))
        b.write_text(json.dumps({"latency": {"p99": 200.0}}))
        assert main(["obs", "compare", str(a), str(b)]) == 0  # report-only
        out = capsys.readouterr().out
        assert "1 regressed" in out and "REGRESSED" in out

    def test_compare_fail_on_regression(self, tmp_path, capsys):
        import json

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"p99": 100.0}))
        b.write_text(json.dumps({"p99": 200.0}))
        assert (
            main(["obs", "compare", str(a), str(b), "--fail-on-regression"])
            == 1
        )
        # A custom threshold wide enough swallows the move.
        assert (
            main(
                [
                    "obs", "compare", str(a), str(b),
                    "--fail-on-regression", "--threshold", "2.0",
                ]
            )
            == 0
        )

    def test_compare_bad_artifact_exits_cleanly(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text("{broken")
        b = tmp_path / "b.json"
        b.write_text("{}")
        assert main(["obs", "compare", str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs compare: ")
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_stitch_merges_traces(self, tmp_path, capsys):
        import json

        from repro.obs import SpanRecorder, load_chrome_trace

        paths = []
        for name in ("client", "server"):
            rec = SpanRecorder(name)
            with rec.span("work"):
                pass
            path = tmp_path / f"{name}.json"
            rec.write(str(path))
            paths.append(str(path))
        out_path = tmp_path / "stitched.json"
        assert main(["obs", "stitch", *paths, "-o", str(out_path)]) == 0
        stitched = load_chrome_trace(str(out_path))
        assert {e["pid"] for e in stitched["traceEvents"]} == {0, 1}
        assert "2 traces" in capsys.readouterr().out

    def test_stitch_invalid_input_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        out_path = tmp_path / "out.json"
        assert main(["obs", "stitch", str(bad), "-o", str(out_path)]) == 1
        assert capsys.readouterr().err.startswith("obs stitch: ")


class TestObsRobustInputs:
    def test_summarize_json_export_with_slo(self, tmp_path, capsys):
        import json

        from repro.mesh import Mesh2D
        from repro.obs import JSONLSink, Telemetry
        from repro.service import LabelingService, handle_request

        trace = tmp_path / "svc.jsonl"
        telemetry = Telemetry(sinks=[JSONLSink(str(trace))])
        service = LabelingService(Mesh2D(12, 12))
        handle_request(service, {"op": "ping"}, telemetry=telemetry)
        handle_request(service, {"op": "nope"}, telemetry=telemetry)
        telemetry.close()
        out_json = tmp_path / "summary.json"
        capsys.readouterr()
        assert (
            main(
                [
                    "obs", "summarize", str(trace), "--json", str(out_json),
                    "--slo-availability", "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "slo:" in out
        exported = json.loads(out_json.read_text())
        assert exported["slo"]["count"] == 2
        assert exported["slo"]["errors"] == 1
        assert exported["slo"]["config"]["availability_target"] == 0.9
        assert exported["service_latency"]["ping"]["count"] == 1.0

    def test_summarize_truncated_jsonl_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "truncated.jsonl"
        bad.write_text(
            '{"name": "heartbeat", "t": 0.0, "level": "info", '
            '"fields": {"seq": 1, "clock": 1}}\n'
            '{"name": "heartbeat", "t": 0.1, "le'
        )
        assert main(["obs", "summarize", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs summarize: ")
        assert ":2:" in err
        assert len(err.strip().splitlines()) == 1

    def test_summarize_binary_file_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "binary.jsonl"
        bad.write_bytes(b"\x00\xff\xfe\x01binary garbage")
        assert main(["obs", "summarize", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs summarize: ")
        assert len(err.strip().splitlines()) == 1

    def test_validate_binary_file_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "binary.jsonl"
        bad.write_bytes(b"\x80\x81\x82\x83")
        assert main(["obs", "validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("obs validate: ")
        assert "not UTF-8" in err
        assert len(err.strip().splitlines()) == 1

    def test_summarize_bad_slo_flags_exit_cleanly(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        assert (
            main(
                ["obs", "summarize", str(trace), "--slo-quantile", "1.5"]
            )
            == 1
        )
        assert capsys.readouterr().err.startswith("obs summarize: ")
