"""Unit tests for the cluster and guillotine cover heuristics."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.faults import uniform_random
from repro.geometry import CellSet, is_orthoconvex, orthoconvex_closure, shapes
from repro.partition import cluster_cover, exact_cover, guillotine_cover

SHAPE = (16, 16)


def _valid(cover, faults):
    assert faults <= _union(cover)
    for p in cover.polygons:
        assert is_orthoconvex(p)
    assert cover.separation() >= 2


def _union(cover):
    out = CellSet.empty(cover.faults.shape)
    for p in cover.polygons:
        out = out | p
    return out


class TestClusterCover:
    def test_two_distant_clusters_split(self):
        faults = (
            shapes.rectangle(SHAPE, (1, 1), 2, 2)
            | shapes.rectangle(SHAPE, (10, 10), 2, 2)
        )
        cover = cluster_cover(faults)
        assert cover.num_polygons == 2
        assert cover.num_nonfaulty == 0
        _valid(cover, faults)

    def test_connected_block_stays_single(self):
        faults = shapes.u_shape(SHAPE, (2, 2), 6, 5, 1)
        cover = cluster_cover(faults)
        assert cover.num_polygons == 1
        # A connected U cannot be split under the separation floor, so
        # the cover is the closure (cavity filled).
        assert _union(cover) == orthoconvex_closure(faults)

    def test_close_clusters_merge(self):
        # Clusters at distance 1 must merge to honour separation >= 2.
        faults = CellSet.from_coords(SHAPE, [(3, 3), (3, 5)])
        cover = cluster_cover(faults)
        if cover.num_polygons == 2:
            assert cover.separation() >= 2

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            cluster_cover(CellSet.empty(SHAPE))

    def test_never_worse_than_single_polygon(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            faults = uniform_random(SHAPE, 10, rng).cells
            from repro.geometry import connect_orthoconvex

            single = connect_orthoconvex(faults)
            cover = cluster_cover(faults)
            assert cover.num_nonfaulty <= len(single) - len(faults)
            _valid(cover, faults)


class TestGuillotineCover:
    def test_splits_on_wide_gap(self):
        faults = (
            shapes.rectangle(SHAPE, (1, 1), 2, 2)
            | shapes.rectangle(SHAPE, (10, 1), 2, 2)
        )
        cover = guillotine_cover(faults)
        assert cover.num_polygons == 2
        _valid(cover, faults)

    def test_no_gap_single_polygon(self):
        faults = shapes.rectangle(SHAPE, (2, 2), 4, 4)
        cover = guillotine_cover(faults)
        assert cover.num_polygons == 1

    def test_respects_min_separation(self):
        # Gap of exactly one column: splitting gives separation 2 (ok
        # for the default floor), so the guillotine takes it.
        faults = CellSet.from_coords(SHAPE, [(3, 3), (5, 3)])
        cover = guillotine_cover(faults, min_separation=2)
        assert cover.num_polygons == 2
        assert cover.separation() == 2
        # With floor 3 the same pattern must stay joined.
        cover3 = guillotine_cover(faults, min_separation=3)
        assert cover3.num_polygons == 1

    def test_recursive_splitting(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1), (6, 1), (1, 8), (6, 8)])
        cover = guillotine_cover(faults)
        assert cover.num_polygons == 4
        assert cover.num_nonfaulty == 0

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            guillotine_cover(CellSet.empty(SHAPE))


class TestExactCover:
    def test_matches_obvious_optimum(self):
        faults = CellSet.from_coords(SHAPE, [(2, 2), (8, 8)])
        cover = exact_cover(faults)
        assert cover.num_nonfaulty == 0 and cover.num_polygons == 2

    def test_adjacent_faults_one_atom(self):
        faults = CellSet.from_coords(SHAPE, [(2, 2), (2, 3)])
        cover = exact_cover(faults)
        assert cover.num_polygons == 1

    def test_exact_beats_or_ties_heuristics(self):
        rng = np.random.default_rng(8)
        for _ in range(5):
            faults = uniform_random((12, 12), 6, rng).cells
            if not faults:
                continue
            exact = exact_cover(faults)
            for heuristic in (cluster_cover, guillotine_cover):
                assert exact.num_nonfaulty <= heuristic(faults).num_nonfaulty

    def test_atom_limit_enforced(self):
        rng = np.random.default_rng(0)
        faults = uniform_random((30, 30), 25, rng).cells
        with pytest.raises(PartitionError):
            exact_cover(faults, max_atoms=5)

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            exact_cover(CellSet.empty(SHAPE))

    def test_separation_floor_respected(self):
        faults = CellSet.from_coords(SHAPE, [(2, 2), (4, 4)])
        cover = exact_cover(faults, min_separation=2)
        _valid(cover, faults)
