"""Unit tests for FaultCover validation and scoring."""

import pytest

from repro.errors import PartitionError
from repro.geometry import CellSet, shapes
from repro.partition import FaultCover

SHAPE = (12, 12)


class TestBuildValidation:
    def test_valid_cover(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1), (5, 5)])
        polys = [
            CellSet.from_coords(SHAPE, [(1, 1)]),
            CellSet.from_coords(SHAPE, [(5, 5)]),
        ]
        cover = FaultCover.build(faults, polys)
        assert cover.num_polygons == 2
        assert cover.num_nonfaulty == 0

    def test_rejects_uncovered_fault(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1), (5, 5)])
        with pytest.raises(PartitionError):
            FaultCover.build(faults, [CellSet.from_coords(SHAPE, [(1, 1)])])

    def test_rejects_overlapping_polygons(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1)])
        a = shapes.rectangle(SHAPE, (0, 0), 3, 3)
        b = shapes.rectangle(SHAPE, (2, 2), 3, 3)
        with pytest.raises(PartitionError):
            FaultCover.build(faults, [a, b])

    def test_rejects_non_orthoconvex_polygon(self):
        faults = CellSet.from_coords(SHAPE, [(2, 2)])
        u = shapes.u_shape(SHAPE, (1, 1), 5, 4, 1)
        with pytest.raises(PartitionError):
            FaultCover.build(faults, [u])

    def test_rejects_empty_faults(self):
        with pytest.raises(PartitionError):
            FaultCover.build(CellSet.empty(SHAPE), [])


class TestScoring:
    def test_nonfaulty_count(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1), (2, 2)])
        square = shapes.rectangle(SHAPE, (1, 1), 2, 2)
        cover = FaultCover.build(faults, [square])
        assert cover.total_cells == 4
        assert cover.num_nonfaulty == 2

    def test_improvement_over(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1), (2, 2)])
        coarse = FaultCover.build(faults, [shapes.rectangle(SHAPE, (1, 1), 2, 2)])
        fine = FaultCover.build(faults, [faults])  # diagonal pair is orthoconvex
        assert fine.improvement_over(coarse) == 2

    def test_separation(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1), (6, 1)])
        cover = FaultCover.build(
            faults,
            [
                CellSet.from_coords(SHAPE, [(1, 1)]),
                CellSet.from_coords(SHAPE, [(6, 1)]),
            ],
        )
        assert cover.separation() == 5

    def test_single_polygon_separation_sentinel(self):
        faults = CellSet.from_coords(SHAPE, [(1, 1)])
        cover = FaultCover.build(faults, [faults])
        assert cover.separation() >= 10**9
