"""Ablation A1: mesh vs torus boundary handling.

The paper notes the ghost-node boundary construction is unnecessary on
a torus ("the boundary problem does not exist in a 2-D tori with
wraparound connections").  This ablation runs the same sweep on both
topologies: round counts and enabled ratios should behave identically
in shape, with the torus merging wrap-adjacent fault clusters that the
mesh keeps apart.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import format_table, run_fig5
from repro.core import SafetyDefinition, label_mesh
from repro.faults import FaultSet, uniform_random
from repro.mesh import Mesh2D, Torus2D

F_VALUES = (0, 25, 50, 75, 100)
TRIALS = 10


@pytest.fixture(scope="module")
def curves():
    return {
        "mesh": run_fig5(
            SafetyDefinition.DEF_2B,
            topology=Mesh2D(100, 100),
            f_values=F_VALUES,
            trials=TRIALS,
            seed=77,
        ),
        "torus": run_fig5(
            SafetyDefinition.DEF_2B,
            topology=Torus2D(100, 100),
            f_values=F_VALUES,
            trials=TRIALS,
            seed=77,
        ),
    }


def test_topology_ablation_table(curves, emit):
    rows = []
    for name, curve in curves.items():
        for p in curve.points:
            ratio = p.enabled_ratio.mean
            rows.append(
                [
                    name,
                    p.f,
                    p.rounds_fb.mean,
                    p.rounds_dr.mean,
                    100.0 * ratio if not math.isnan(ratio) else float("nan"),
                    p.num_blocks.mean,
                ]
            )
    emit(
        "ablation_topology",
        format_table(
            ["topology", "f", "rounds(FB)", "rounds(DR)", "enabled %", "#blocks"],
            rows,
            title="Mesh vs torus, Definition 2b, 100x100",
        ),
    )


def test_shapes_match_across_topologies(curves):
    mesh, torus = curves["mesh"], curves["torus"]
    for pm, pt in zip(mesh.points, torus.points):
        assert pm.f == pt.f
        # Same qualitative behaviour on both topologies.
        assert pt.rounds_fb.mean < 20 and pm.rounds_fb.mean < 20
        rm, rt = pm.enabled_ratio.mean, pt.enabled_ratio.mean
        if not (math.isnan(rm) or math.isnan(rt)):
            assert abs(rm - rt) < 0.15


def test_wrap_adjacent_faults_merge_only_on_torus():
    # Faults hugging opposite edges: one block on the torus, two on the
    # mesh — the concrete boundary-handling difference.
    coords = [(0, 10), (99, 10)]
    faults = FaultSet.from_coords((100, 100), coords)
    mesh_r = label_mesh(Mesh2D(100, 100), faults)
    torus_r = label_mesh(Torus2D(100, 100), faults)
    assert len(mesh_r.blocks) == 2
    assert len(torus_r.blocks) == 1


def test_torus_kernel_benchmark(benchmark):
    torus = Torus2D(100, 100)
    rng = np.random.default_rng(2)
    faults = uniform_random(torus.shape, 100, rng)
    benchmark(lambda: label_mesh(torus, faults))
