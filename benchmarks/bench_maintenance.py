"""Maintenance: the incremental relabeling service vs from-scratch.

The paper's Section-1 claim that blocks are "easily established and
maintained" is quantified here: a stream of fault events is absorbed
online by :class:`~repro.service.LabelingService` (phase 1 warm-started
from the standing labels, phase 2 re-solved per affected block) and the
per-event cost is compared against relabeling the whole machine from
scratch after every event.  A final repair event exercises the bounded
un-label wave on the same stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import uniform_random
from repro.mesh import Mesh2D
from repro.service import LabelingService

MESH = Mesh2D(64, 64)
EVENTS = 10
PER_EVENT = 5


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(31)
    service = LabelingService(MESH)
    rows = []
    batches = []
    for event in range(EVENTS):
        batch = uniform_random(MESH.shape, PER_EVENT, rng)
        batches.append(batch)
        delta = service.update(inject=list(batch))
        scratch = label_mesh(MESH, service.faults)
        assert service.verify_against_scratch()
        rows.append(
            [
                f"inject {event}",
                len(service.faults),
                delta.rounds_phase1,
                scratch.rounds_phase1,
                delta.rounds_phase2,
                scratch.rounds_phase2,
            ]
        )
    # One repair event: heal the last batch via the bounded un-label wave.
    delta = service.update(repair=list(batches[-1]))
    scratch = label_mesh(MESH, service.faults)
    assert service.verify_against_scratch()
    rows.append(
        [
            "repair",
            len(service.faults),
            delta.rounds_phase1,
            scratch.rounds_phase1,
            delta.rounds_phase2,
            scratch.rounds_phase2,
        ]
    )
    return rows


def test_maintenance_table(measurements, emit):
    emit(
        "maintenance",
        format_table(
            [
                "event",
                "faults",
                "incr p1",
                "scratch p1",
                "incr p2",
                "scratch p2",
            ],
            measurements,
            title=f"Incremental vs scratch rounds, {EVENTS} events x "
            f"{PER_EVENT} faults on a 64x64 mesh",
        ),
    )


def test_incremental_never_costs_more_phase1_rounds(measurements):
    for row in measurements:
        if str(row[0]).startswith("inject"):
            assert row[2] <= row[3]


def test_labels_always_match_scratch(measurements):
    # Asserted inside the fixture per event; confirm all events ran.
    assert len(measurements) == EVENTS + 1


def test_maintenance_kernel_benchmark(benchmark):
    rng = np.random.default_rng(8)
    batches = [uniform_random(MESH.shape, PER_EVENT, rng) for _ in range(5)]

    def run():
        service = LabelingService(MESH)
        for b in batches:
            service.update(inject=list(b))
        return service

    benchmark(run)
