"""Maintenance: incremental relabeling vs from-scratch relabeling.

The paper's Section-1 claim that blocks are "easily established and
maintained" is quantified here: a stream of fault events is absorbed
incrementally (phase 1 warm-started from the standing labels) and the
per-event cost is compared against relabeling the whole machine from
scratch after every event.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import MaintainedLabeling, label_mesh
from repro.faults import uniform_random
from repro.mesh import Mesh2D

MESH = Mesh2D(64, 64)
EVENTS = 10
PER_EVENT = 5


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(31)
    maintained = MaintainedLabeling(MESH)
    rows = []
    for event in range(EVENTS):
        batch = uniform_random(MESH.shape, PER_EVENT, rng)
        report = maintained.inject(batch)
        scratch = label_mesh(MESH, maintained.faults)
        assert maintained.verify_against_scratch()
        rows.append(
            [
                event,
                len(maintained.faults),
                report.rounds_phase1,
                scratch.rounds_phase1,
                report.rounds_phase2,
                scratch.rounds_phase2,
            ]
        )
    return rows


def test_maintenance_table(measurements, emit):
    emit(
        "maintenance",
        format_table(
            [
                "event",
                "faults",
                "incr p1",
                "scratch p1",
                "incr p2",
                "scratch p2",
            ],
            measurements,
            title=f"Incremental vs scratch rounds, {EVENTS} events x "
            f"{PER_EVENT} faults on a 64x64 mesh",
        ),
    )


def test_incremental_never_costs_more_phase1_rounds(measurements):
    for row in measurements:
        assert row[2] <= row[3]


def test_labels_always_match_scratch(measurements):
    # Asserted inside the fixture per event; confirm all events ran.
    assert len(measurements) == EVENTS


def test_maintenance_kernel_benchmark(benchmark):
    rng = np.random.default_rng(8)
    batches = [uniform_random(MESH.shape, PER_EVENT, rng) for _ in range(5)]

    def run():
        m = MaintainedLabeling(MESH)
        for b in batches:
            m.inject(b)
        return m

    benchmark(run)
