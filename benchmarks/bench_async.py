"""Asynchrony: the protocols without the lock-step assumption.

The paper presents the algorithm synchronously "to simplify our
discussion".  This benchmark runs the same per-node programs under
randomly delayed asynchronous schedules and shows (a) the labels are
identical to the synchronous fixpoint at every delay bound, and (b) how
message and event counts scale with the delay bound — the practical
price of asynchrony.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import SafetyDefinition, unsafe_fixpoint
from repro.core.distributed import async_unsafe, distributed_unsafe
from repro.faults import clustered
from repro.mesh import Mesh2D

MESH = Mesh2D(32, 32)
DELAYS = (1, 2, 4, 8, 16)
TRIALS = 4


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(55)
    rows = []
    for trial in range(TRIALS):
        faults = clustered(MESH.shape, 30, rng, clusters=2, spread=2.0)
        expected, sync_rounds = unsafe_fixpoint(
            MESH, faults.mask, SafetyDefinition.DEF_2B
        )
        _, sync_stats, _ = distributed_unsafe(MESH, faults)
        for delay in DELAYS:
            got, stats = async_unsafe(
                MESH, faults, np.random.default_rng(trial * 100 + delay), max_delay=delay
            )
            assert np.array_equal(got, expected)
            rows.append(
                [
                    trial,
                    delay,
                    sync_rounds,
                    sync_stats.total_messages,
                    stats.rounds,
                    stats.total_messages,
                ]
            )
    return rows


def test_async_table(measurements, emit):
    emit(
        "async_schedules",
        format_table(
            [
                "trial",
                "max delay",
                "sync rounds",
                "sync msgs",
                "async flips",
                "async msgs",
            ],
            measurements,
            title="Phase 1 under asynchronous schedules (32x32, 30 clustered faults)",
        ),
    )


def test_labels_identical_under_all_delays(measurements):
    # Asserted in the fixture; confirm the full grid of runs happened.
    assert len(measurements) == TRIALS * len(DELAYS)


def test_async_message_overhead_is_bounded(measurements):
    # The change-driven protocol sends the same status messages however
    # they are delayed; async totals stay within a small factor of sync.
    for row in measurements:
        assert row[5] <= 3 * row[3] + 100


def test_async_kernel_benchmark(benchmark):
    rng = np.random.default_rng(9)
    faults = clustered(MESH.shape, 30, rng, clusters=2, spread=2.0)
    benchmark(
        lambda: async_unsafe(MESH, faults, np.random.default_rng(1), max_delay=4)
    )
