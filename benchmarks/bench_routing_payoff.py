"""Ablation A3: the routing payoff of the refined fault model.

The paper's motivation (Sections 1 and 6): shrinking rectangular faulty
blocks to orthogonal convex polygons activates nonfaulty nodes, which
"facilitates efficient fault-tolerant and deadlock-free routing".  The
original version of this benchmark sampled a few hundred pairs through
the scalar path routers; this one drives the batched numpy traffic
engine instead, so the payoff is measured the way network papers
measure it — tens of thousands of contending packets per view, with
latency distributions and accepted throughput, under

* the **rectangle faulty-block view** (``rect-fb``: every Def 2b
  unsafe node disabled),
* the **Def 2a region view**, and
* the **Def 2b region view** (the paper's algorithm statement),

with byte-identical traffic drawn from the intersection of the three
enabled sets, so every view routes exactly the same workload.

Expected shape: the region views enable more nodes, so the same
offered load drains in fewer cycles — higher accepted throughput and
lower delivered latency.  Delivery may dip slightly below the block
view's: the rectangle-detour kernel is memoryless, and the budget
guard cuts the rare multi-rect livelock the block view's fatter
rectangles happen to shadow.  The table records the drop split so that
cost stays visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import SafetyDefinition, label_mesh
from repro.faults import clustered
from repro.mesh import Mesh2D
from repro.network import BatchedNetwork, synthetic_traffic
from repro.routing import FaultModelView

MESH = Mesh2D(64, 64)
FAULTS = 100
PACKETS = 60_000
RATE = 50.0
TRIALS = 2


def competing_views(result_2a, result_2b):
    """The three fault-model views the paper's payoff argument compares."""
    return {
        "rect-fb": FaultModelView.from_blocks(result_2b),
        "regions-2a": FaultModelView.from_regions(result_2a),
        "regions-2b": FaultModelView.from_regions(result_2b),
    }


def endpoint_view(views):
    """Intersection of the enabled sets: endpoints valid under every view."""
    inter = np.ones(MESH.shape, dtype=bool)
    for view in views.values():
        inter &= view.enabled
    return FaultModelView(MESH, inter)


@pytest.fixture(scope="module")
def measurements():
    rows = []
    stats = {name: [] for name in ("rect-fb", "regions-2a", "regions-2b")}
    rng = np.random.default_rng(13)
    for trial in range(TRIALS):
        faults = clustered(MESH.shape, FAULTS, rng, clusters=4, spread=2.0)
        views = competing_views(
            label_mesh(MESH, faults, SafetyDefinition.DEF_2A),
            label_mesh(MESH, faults, SafetyDefinition.DEF_2B),
        )
        traffic = synthetic_traffic(
            endpoint_view(views),
            PACKETS,
            np.random.default_rng((3, trial)),
            injection_rate=RATE,
        )
        for name, view in views.items():
            res = BatchedNetwork(view, kernel="detour").run(traffic)
            drops = res.drop_counts()
            rows.append(
                [
                    trial,
                    name,
                    view.num_enabled,
                    res.delivery_rate,
                    res.throughput,
                    res.mean_latency,
                    res.p95_latency,
                    drops.get("BLOCKED", 0),
                    drops.get("BUDGET", 0),
                ]
            )
            stats[name].append(res)
    return rows, stats


def test_routing_payoff_table(measurements, emit):
    rows, _ = measurements
    emit(
        "routing_payoff",
        format_table(
            [
                "trial",
                "view",
                "enabled",
                "delivery",
                "thr",
                "mean_lat",
                "p95_lat",
                "blocked",
                "budget",
            ],
            rows,
            title=(
                f"Batched traffic under block vs region views "
                f"({MESH.width}x{MESH.height}, {FAULTS} clustered faults, "
                f"{PACKETS} packets @ rate {RATE} x {TRIALS} trials)"
            ),
        ),
    )


def test_region_views_enable_more_nodes(measurements):
    rows, _ = measurements
    enabled = {(r[0], r[1]): r[2] for r in rows}
    for trial in range(TRIALS):
        assert enabled[(trial, "regions-2a")] >= enabled[(trial, "rect-fb")]
        assert enabled[(trial, "regions-2b")] >= enabled[(trial, "rect-fb")]


def test_region_view_throughput_payoff(measurements):
    # More enabled nodes -> the same offered load drains faster.
    _, stats = measurements
    for blocks, regions in zip(stats["rect-fb"], stats["regions-2b"]):
        assert regions.throughput >= 0.95 * blocks.throughput


def test_region_view_latency_payoff(measurements):
    _, stats = measurements
    for blocks, regions in zip(stats["rect-fb"], stats["regions-2b"]):
        assert regions.mean_latency <= 1.05 * blocks.mean_latency


def test_delivery_stays_high_everywhere(measurements):
    _, stats = measurements
    for results in stats.values():
        for res in results:
            assert res.delivery_rate > 0.9


def test_batched_engine_matches_oracle_here(measurements):
    # Downsized replica of the exact campaign setup, cross-checked
    # bit-for-bit against the scalar reference engine.
    rng = np.random.default_rng(13)
    mesh = Mesh2D(16, 16)
    faults = clustered(mesh.shape, 12, rng, clusters=2, spread=2.0)
    result = label_mesh(mesh, faults)
    view = FaultModelView.from_regions(result)
    traffic = synthetic_traffic(
        view, 3000, np.random.default_rng(3), injection_rate=8.0
    )
    fast = BatchedNetwork(view, kernel="detour").run(traffic)
    slow = BatchedNetwork(view, kernel="detour", engine="reference").run(traffic)
    assert fast.equals(slow), fast.diff_summary(slow)


def test_routing_kernel_benchmark(benchmark):
    rng = np.random.default_rng(3)
    faults = clustered(MESH.shape, FAULTS, rng, clusters=3, spread=2.0)
    result = label_mesh(MESH, faults)
    view = FaultModelView.from_regions(result)
    net = BatchedNetwork(view, kernel="detour")
    traffic = synthetic_traffic(view, 20_000, rng, injection_rate=RATE)
    benchmark(lambda: net.run(traffic))
