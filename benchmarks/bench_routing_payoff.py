"""Ablation A3: the routing payoff of the refined fault model.

The paper's motivation (Sections 1 and 6): shrinking rectangular faulty
blocks to orthogonal convex polygons activates nonfaulty nodes, which
"facilitates efficient fault-tolerant and deadlock-free routing".  This
benchmark makes that concrete: for identical fault patterns and
identical traffic, it routes under

* the **faulty-block view** (all unsafe nodes disabled), and
* the **disabled-region view** (phase-2 enabled nodes participate),

and reports enabled-node counts, reachability, delivery, detours and
minimal-path availability for the XY baseline, the wall-following
boundary router, the minimal-adaptive router and the BFS oracle.

Expected shape: the region view enables strictly more nodes, so every
oracle metric improves or ties; local routers inherit most of the gain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import clustered
from repro.mesh import Mesh2D
from repro.routing import (
    BFSRouter,
    FaultModelView,
    MinimalRouter,
    SafetyLevelRouter,
    WallRouter,
    XYRouter,
    evaluate_router,
    sample_pairs,
)

MESH = Mesh2D(48, 48)
FAULTS = 60
PAIRS = 150
TRIALS = 5

ROUTERS = (XYRouter, SafetyLevelRouter, WallRouter, MinimalRouter, BFSRouter)


@pytest.fixture(scope="module")
def measurements():
    rows = []
    per_view_delivery = {"blocks": [], "regions": []}
    rng = np.random.default_rng(13)
    for trial in range(TRIALS):
        faults = clustered(MESH.shape, FAULTS, rng, clusters=3, spread=2.0)
        result = label_mesh(MESH, faults)
        views = {
            "blocks": FaultModelView.from_blocks(result),
            "regions": FaultModelView.from_regions(result),
        }
        # Traffic endpoints valid under both views, for a fair per-pair
        # comparison (the block view's enabled set is the intersection).
        pairs = sample_pairs(views["blocks"], PAIRS, rng)
        for view_name, view in views.items():
            for router_cls in ROUTERS:
                router = router_cls(view)
                m = evaluate_router(router, pairs)
                rows.append(
                    [
                        trial,
                        view_name,
                        m.router,
                        view.num_enabled,
                        m.delivery_rate,
                        m.reachability,
                        m.mean_detour,
                        m.minimal_fraction,
                    ]
                )
                if router_cls is BFSRouter:
                    per_view_delivery[view_name].append(m.delivery_rate)
    return rows, per_view_delivery


def test_routing_payoff_table(measurements, emit):
    rows, _ = measurements
    emit(
        "routing_payoff",
        format_table(
            [
                "trial",
                "view",
                "router",
                "enabled",
                "delivery",
                "reach",
                "detour",
                "minimal",
            ],
            rows,
            title=(
                f"Routing under block vs region views "
                f"({MESH.width}x{MESH.height}, {FAULTS} clustered faults, "
                f"{PAIRS} pairs x {TRIALS} trials)"
            ),
        ),
    )


def test_region_view_never_loses(measurements):
    _, per_view = measurements
    for b, r in zip(per_view["blocks"], per_view["regions"]):
        assert r >= b - 1e-12


def test_enabled_node_gain(measurements):
    rows, _ = measurements
    by_view = {"blocks": set(), "regions": set()}
    for row in rows:
        by_view[row[1]].add((row[0], row[3]))
    for trial in range(TRIALS):
        nb = next(n for t, n in by_view["blocks"] if t == trial)
        nr = next(n for t, n in by_view["regions"] if t == trial)
        assert nr >= nb


def test_oracle_dominates_local_routers(measurements):
    rows, _ = measurements
    # Group delivery rates per (trial, view).
    from collections import defaultdict

    groups = defaultdict(dict)
    for trial, view, router, _, delivery, *_ in rows:
        groups[(trial, view)][router] = delivery
    for metrics in groups.values():
        for name, rate in metrics.items():
            assert rate <= metrics["bfs-oracle"] + 1e-12, name


def test_routing_kernel_benchmark(benchmark):
    rng = np.random.default_rng(3)
    faults = clustered(MESH.shape, FAULTS, rng, clusters=3, spread=2.0)
    result = label_mesh(MESH, faults)
    view = FaultModelView.from_regions(result)
    router = WallRouter(view)
    pairs = sample_pairs(view, 50, rng)
    benchmark(lambda: [router.route(s, d) for s, d in pairs])
