"""Figure 5 (c)/(d): percentage of enabled nodes among unsafe-but-
nonfaulty nodes, per reducible faulty block.

Paper setup: same sweep as panels (a)/(b); for each faulty block that
can be reduced to orthogonal convex polygons (i.e. holds at least one
nonfaulty node), the percentage of its unsafe-but-nonfaulty nodes that
phase 2 enables, averaged over blocks and trials.  Panel (c) is
reproduced with Definition 2a, panel (d) with Definition 2b.

Expected shape (paper Section 5): the percentage "stays very high,
especially when the number of faults is relatively low" — random sparse
faults make small blocks whose nonfaulty nodes are easy to activate —
and drifts down slowly as f grows.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import run_fig5
from repro.core import SafetyDefinition, label_mesh
from repro.faults import uniform_random
from repro.mesh import Mesh2D

TRIALS = 20
F_VALUES = tuple(range(0, 101, 10))


@pytest.fixture(scope="module")
def curves():
    return {
        d: run_fig5(d, f_values=F_VALUES, trials=TRIALS, seed=19951106)
        for d in SafetyDefinition
    }


@pytest.mark.parametrize(
    "panel,definition",
    [("c", SafetyDefinition.DEF_2A), ("d", SafetyDefinition.DEF_2B)],
)
def test_fig5_ratio_panel(curves, emit, panel, definition):
    curve = curves[definition]
    emit(f"fig5_{panel}_ratio_def{definition.value}", curve.as_table())

    with_blocks = [p for p in curve.points if not math.isnan(p.enabled_ratio.mean)]
    assert with_blocks, "sweep produced no reducible blocks at all"
    # "Stays very high": every point averages above 80%, and the sparse
    # end of the sweep above 95%.
    for p in with_blocks:
        assert p.enabled_ratio.mean > 0.80, (p.f, p.enabled_ratio)
    sparse = [p for p in with_blocks if p.f <= 30]
    for p in sparse:
        assert p.enabled_ratio.mean > 0.95, (p.f, p.enabled_ratio)


def test_ratio_trend_not_increasing(curves):
    # The ratio drifts downward (more faults -> larger, harder blocks).
    # Random sweeps wobble, so compare the sparse half against the dense
    # half rather than demanding pointwise monotonicity.
    for curve in curves.values():
        vals = [
            p.enabled_ratio.mean
            for p in curve.points
            if not math.isnan(p.enabled_ratio.mean)
        ]
        if len(vals) >= 4:
            head = sum(vals[: len(vals) // 2]) / (len(vals) // 2)
            tail = sum(vals[len(vals) // 2 :]) / (len(vals) - len(vals) // 2)
            assert tail <= head + 0.02


def test_ratio_kernel_benchmark(benchmark):
    """Time one full trial at the densest sweep point (f = 100)."""
    mesh = Mesh2D(100, 100)
    rng = np.random.default_rng(1)
    faults = uniform_random(mesh.shape, 100, rng)

    def trial():
        result = label_mesh(mesh, faults)
        return result.per_block_enabled_ratios()

    benchmark(trial)
