"""Ablation A2: Definition 2a vs 2b — how much the enhanced unsafe rule
saves before phase 2 even runs.

The paper motivates Definition 2b by noting it includes fewer nonfaulty
nodes in faulty blocks than Definition 2a (Section 3).  This ablation
quantifies that across fault densities: imprisoned nonfaulty nodes,
block counts and the post-phase-2 disabled counts under both rules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table, sweep
from repro.core import SafetyDefinition, label_mesh
from repro.faults import clustered, uniform_random
from repro.mesh import Mesh2D

MESH = Mesh2D(64, 64)
F_VALUES = (16, 32, 64, 128)
TRIALS = 8


def _metrics(f, rng):
    faults = uniform_random(MESH.shape, f, rng)
    out = {}
    for d in SafetyDefinition:
        r = label_mesh(MESH, faults, d)
        tag = d.value
        out[f"unsafe_nonfaulty_{tag}"] = r.num_unsafe_nonfaulty
        out[f"blocks_{tag}"] = len(r.blocks)
        out[f"disabled_nonfaulty_{tag}"] = sum(
            reg.num_nonfaulty for reg in r.regions
        )
    return out


@pytest.fixture(scope="module")
def points():
    return sweep(F_VALUES, _metrics, trials=TRIALS, seed=42)


def test_definition_ablation_table(points, emit):
    rows = []
    for p in points:
        m = p.metrics
        rows.append(
            [
                p.value,
                m["unsafe_nonfaulty_2a"].mean,
                m["unsafe_nonfaulty_2b"].mean,
                m["blocks_2a"].mean,
                m["blocks_2b"].mean,
                m["disabled_nonfaulty_2a"].mean,
                m["disabled_nonfaulty_2b"].mean,
            ]
        )
    emit(
        "ablation_definitions",
        format_table(
            [
                "f",
                "imprisoned(2a)",
                "imprisoned(2b)",
                "blocks(2a)",
                "blocks(2b)",
                "disabled(2a)",
                "disabled(2b)",
            ],
            rows,
            title="Definition 2a vs 2b on a 64x64 mesh (uniform faults)",
        ),
    )
    for p in points:
        m = p.metrics
        # 2b never imprisons more than 2a ...
        assert m["unsafe_nonfaulty_2b"].mean <= m["unsafe_nonfaulty_2a"].mean
        # ... and never produces fewer (coarser) blocks.
        assert m["blocks_2b"].mean >= m["blocks_2a"].mean
        # Phase 2 makes the final disabled sets nearly identical: both
        # shrink to minimal polygons around the same faults.
        assert (
            m["disabled_nonfaulty_2b"].mean
            <= m["disabled_nonfaulty_2a"].mean + 1e-9
        )


def test_clustered_faults_magnify_the_gap(emit):
    # Clustered failures build big blocks, where the 2a/2b difference
    # and the phase-2 rescue are both much larger.
    rng = np.random.default_rng(11)
    rows = []
    gaps = []
    for trial in range(6):
        faults = clustered(MESH.shape, 80, rng, clusters=2, spread=2.0)
        ra = label_mesh(MESH, faults, SafetyDefinition.DEF_2A)
        rb = label_mesh(MESH, faults, SafetyDefinition.DEF_2B)
        rows.append(
            [
                trial,
                ra.num_unsafe_nonfaulty,
                rb.num_unsafe_nonfaulty,
                ra.num_activated,
                rb.num_activated,
            ]
        )
        gaps.append(ra.num_unsafe_nonfaulty - rb.num_unsafe_nonfaulty)
    emit(
        "ablation_definitions_clustered",
        format_table(
            ["trial", "imprisoned(2a)", "imprisoned(2b)", "freed(2a)", "freed(2b)"],
            rows,
            title="Clustered faults (80 faults, 2 clusters) on a 64x64 mesh",
        ),
    )
    assert all(g >= 0 for g in gaps)
    assert any(g > 0 for g in gaps)


def test_definition_kernel_benchmark(benchmark):
    rng = np.random.default_rng(5)
    faults = clustered(MESH.shape, 80, rng, clusters=2, spread=2.0)
    benchmark(lambda: label_mesh(MESH, faults, SafetyDefinition.DEF_2A))
