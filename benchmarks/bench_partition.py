"""Ablation A4: the open problem — partitioning covers further.

Section 4 closes with an open problem (conjectured NP-complete): cover a
block's faults with a *set* of orthogonal convex polygons holding the
minimum number of nonfaulty nodes.  This benchmark scores the library's
two polynomial heuristics against the single-polygon disabled-region
baseline, and against exhaustive search where the instance is small
enough to certify the optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import FaultSet, uniform_random
from repro.geometry import connect_orthoconvex
from repro.mesh import Mesh2D
from repro.partition import cluster_cover, exact_cover, guillotine_cover

MESH = Mesh2D(24, 24)
TRIALS = 10


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(21)
    rows = []
    for trial in range(TRIALS):
        faults = uniform_random(MESH.shape, 10, rng)
        if not faults:
            continue
        baseline_poly = connect_orthoconvex(faults.cells)
        baseline = len(baseline_poly) - len(faults)
        cluster = cluster_cover(faults.cells)
        guillotine = guillotine_cover(faults.cells)
        try:
            exact = exact_cover(faults.cells)
            exact_cost = exact.num_nonfaulty
        except Exception:
            exact_cost = float("nan")
        rows.append(
            [
                trial,
                len(faults),
                baseline,
                cluster.num_nonfaulty,
                guillotine.num_nonfaulty,
                exact_cost,
                cluster.num_polygons,
                guillotine.num_polygons,
            ]
        )
    return rows


def test_partition_table(measurements, emit):
    emit(
        "partition_open_problem",
        format_table(
            [
                "trial",
                "faults",
                "single-OCP",
                "cluster",
                "guillotine",
                "exact",
                "#poly(cl)",
                "#poly(gu)",
            ],
            rows=measurements,
            title="Nonfaulty nodes imprisoned per cover strategy (24x24, 10 faults)",
        ),
    )


def test_heuristics_never_worse_than_baseline(measurements):
    for row in measurements:
        baseline, cluster, guillotine = row[2], row[3], row[4]
        assert cluster <= baseline
        assert guillotine <= baseline


def test_exact_lower_bounds_heuristics(measurements):
    import math

    for row in measurements:
        exact = row[5]
        if not math.isnan(exact):
            assert exact <= row[3] and exact <= row[4]


def test_structured_instance_with_known_optimum(emit):
    # Two 2x2 fault squares far apart inside what phase 1 would merge
    # into one region if they were close: the optimal cover is the two
    # squares themselves (0 nonfaulty nodes).
    faults = FaultSet.from_coords(
        (24, 24),
        [(2, 2), (3, 2), (2, 3), (3, 3), (12, 12), (13, 12), (12, 13), (13, 13)],
    )
    exact = exact_cover(faults.cells)
    assert exact.num_nonfaulty == 0 and exact.num_polygons == 2
    for heuristic in (cluster_cover, guillotine_cover):
        assert heuristic(faults.cells).num_nonfaulty == 0


def test_partition_kernel_benchmark(benchmark):
    rng = np.random.default_rng(4)
    faults = uniform_random(MESH.shape, 10, rng)
    benchmark(lambda: cluster_cover(faults.cells))
