#!/usr/bin/env python
"""Machine-readable performance baseline: ``python benchmarks/perf_baseline.py``.

Times the hot paths this repository optimises —

* phase-1 / phase-2 fixpoints, dense Jacobi vs sparse frontier kernels
  (on the acceptance workload: a 500x500 mesh with 100 clustered
  faults),
* the end-to-end pipeline, reference geometry + dense kernels vs the
  default fast path (frontier kernels + vectorized extraction), with a
  breakdown attributing time to kernels vs extraction vs theorem
  verification,
* the fabric engine, full stepping vs active-set stepping,
* a Figure-5-style sweep slice, serial vs process-parallel on the warm
  chunked executor (min-of-repeats on both legs, pool pre-warmed so the
  figure reports the amortized steady state),
* the telemetry guard overhead: the same pipeline with telemetry off
  (``telemetry=None``) vs a null-sink telemetry exercising every emit
  site — the off path must stay within the 2% acceptance budget,
* the incremental relabeling service: a stream of single-fault
  inject/repair deltas absorbed online vs relabeling from scratch after
  every event (per-update latency, updates/sec throughput, and the
  speedup the ``incremental`` CI job gates on), plus the admin-plane
  cost: the same stream while a live ``/metrics`` + ``/varz`` endpoint
  is scraped concurrently (budget: <= 3% throughput loss),
* the tile-sharded halo-exchange fixpoints: the dense single-array
  baseline vs ``jobs=2`` sharding (the ``sharded`` CI gate, also
  runnable alone via ``--gate-sharded``), strong/weak scaling curves
  across worker counts, and a 10000x10000 (100M-cell) completion run
  over shared-memory planes (full mode),
* the batched traffic engine: the scalar per-packet reference engine
  vs the numpy column engine on identical traffic (the ``routing`` CI
  gate, also runnable alone via ``--gate-routing``; results must be
  bit-for-bit equal), the routing payoff of the region views over the
  rectangle faulty-block view under contending traffic, the scalar
  wormhole oracle at the 1e5-packet scale, and (full mode) the
  million-packet 256x256 saturation campaign comparing the rectangle
  view against Def 2a / Def 2b regions,

verifies that every fast path reproduces the reference results exactly,
and writes ``BENCH_perf.json`` at the repository root so successive PRs
leave a machine-readable perf trajectory.  ``--quick`` shrinks every
workload for CI smoke runs (same schema, same checks).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro._version import __version__
from repro.analysis.executor import shared_pools
from repro.analysis.sweep import sweep
from repro.core.blocks import extract_blocks
from repro.core.distributed import distributed_enabled, distributed_unsafe
from repro.core.enabling import enabled_fixpoint
from repro.core.frontier import enabled_fixpoint_sparse, unsafe_fixpoint_sparse
from repro.core.pipeline import label_mesh
from repro.core.regions import extract_regions
from repro.core.safety import unsafe_fixpoint
from repro.core.sharded import enabled_fixpoint_sharded, unsafe_fixpoint_sharded
from repro.core.status import SafetyDefinition
from repro.core.theorems import check_all
from repro.faults.generators import clustered, uniform_random
from repro.mesh.tiling import parse_shard_spec
from repro.mesh.topology import Mesh2D
from repro.network import (
    BatchedNetwork,
    WormholeNetwork,
    injection_sweep,
    synthetic_traffic,
    uniform_traffic,
    xy_hops,
)
from repro.obs.telemetry import Telemetry
from repro.routing import FaultModelView


def _best_of(fn, repeats: int = 3):
    """Best wall-clock of ``repeats`` runs, plus the last return value."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _pair(name: str, slow_s: float, fast_s: float, extra=None) -> dict:
    entry = {
        "baseline_s": round(slow_s, 6),
        "optimized_s": round(fast_s, 6),
        "speedup": round(slow_s / fast_s, 3) if fast_s > 0 else None,
    }
    if extra:
        entry.update(extra)
    print(
        f"{name:>28}: {slow_s * 1e3:9.2f} ms -> {fast_s * 1e3:9.2f} ms "
        f"({entry['speedup']}x)"
    )
    return entry


def _sweep_metric(params, rng):
    """Module-level so the parallel sweep can pickle it."""
    size, f = params
    topo = Mesh2D(size, size)
    faults = uniform_random(topo.shape, int(f), rng)
    result = label_mesh(topo, faults, SafetyDefinition.DEF_2B)
    return {
        "rounds1": float(result.rounds_phase1),
        "rounds2": float(result.rounds_phase2),
        "enabled_ratio": float(result.enabled_ratio),
    }


def bench_kernels(size: int, f: int, repeats: int) -> dict:
    """Dense vs frontier fixpoints on clustered faults (phase 1 and 2)."""
    topo = Mesh2D(size, size)
    faults = clustered(
        topo.shape, f, np.random.default_rng(20010423), clusters=3, spread=2.0
    )
    faulty = faults.mask

    t_dense1, (unsafe_d, r1_d) = _best_of(
        lambda: unsafe_fixpoint(topo, faulty), repeats
    )
    t_front1, (unsafe_f, r1_f) = _best_of(
        lambda: unsafe_fixpoint_sparse(topo, faulty), repeats
    )
    assert np.array_equal(unsafe_d, unsafe_f) and r1_d == r1_f, (
        "frontier phase-1 diverged from dense"
    )

    t_dense2, (en_d, r2_d) = _best_of(
        lambda: enabled_fixpoint(topo, faulty, unsafe_d), repeats
    )
    t_front2, (en_f, r2_f) = _best_of(
        lambda: enabled_fixpoint_sparse(topo, faulty, unsafe_d), repeats
    )
    assert np.array_equal(en_d, en_f) and r2_d == r2_f, (
        "frontier phase-2 diverged from dense"
    )

    # End-to-end: everything slow (dense kernels + reference per-cell
    # geometry) vs the default fast path (auto kernels + vectorized
    # union-find geometry) — the Amdahl headline of this repository.
    t_pipe_slow, slow_result = _best_of(
        lambda: label_mesh(topo, faults, method="dense", geometry_backend="reference"),
        repeats,
    )
    t_pipe_fast, fast_result = _best_of(lambda: label_mesh(topo, faults), repeats)
    assert np.array_equal(
        slow_result.labels.unsafe, fast_result.labels.unsafe
    ) and np.array_equal(slow_result.labels.enabled, fast_result.labels.enabled), (
        "fast pipeline diverged from reference"
    )
    assert slow_result.blocks == fast_result.blocks, (
        "vectorized block extraction diverged from reference"
    )
    assert slow_result.regions == fast_result.regions, (
        "vectorized region extraction diverged from reference"
    )

    # Breakdown: where one fast-path run actually spends its time.
    disabled = fast_result.labels.disabled
    t_extract_ref, _ = _best_of(
        lambda: (
            extract_blocks(unsafe_d, faulty, backend="reference"),
            extract_regions(disabled, faulty, backend="reference"),
        ),
        repeats,
    )
    t_extract_vec, _ = _best_of(
        lambda: (
            extract_blocks(unsafe_d, faulty, backend="vectorized"),
            extract_regions(disabled, faulty, backend="vectorized"),
        ),
        repeats,
    )
    t_verify, outcomes = _best_of(lambda: check_all(fast_result), repeats)
    assert all(o.holds for o in outcomes), "theorem verification failed"

    return {
        "mesh": f"{size}x{size}",
        "faults": f,
        "fault_model": "clustered",
        "rounds_phase1": r1_d,
        "rounds_phase2": r2_d,
        "phase1": _pair("phase1 dense vs frontier", t_dense1, t_front1),
        "phase2": _pair("phase2 dense vs frontier", t_dense2, t_front2),
        "pipeline": _pair("pipeline slow vs fast path", t_pipe_slow, t_pipe_fast),
        "breakdown": {
            "kernels_s": round(t_front1 + t_front2, 6),
            "extraction": _pair(
                "extraction ref vs vectorized", t_extract_ref, t_extract_vec
            ),
            "verification_s": round(t_verify, 6),
        },
    }


def bench_fabric(size: int, f: int, repeats: int) -> dict:
    """Fabric engine: full stepping vs active-set stepping, both phases."""
    topo = Mesh2D(size, size)
    faults = clustered(
        topo.shape, f, np.random.default_rng(42), clusters=3, spread=2.0
    )

    def run(active: bool):
        unsafe, s1, _ = distributed_unsafe(topo, faults, active_set=active)
        enabled, s2, _ = distributed_enabled(topo, faults, unsafe, active_set=active)
        return unsafe, enabled, s1, s2

    t_full, (u_full, e_full, s1_full, s2_full) = _best_of(lambda: run(False), repeats)
    t_active, (u_act, e_act, s1_act, s2_act) = _best_of(lambda: run(True), repeats)
    assert np.array_equal(u_full, u_act) and np.array_equal(e_full, e_act), (
        "active-set engine diverged from full stepping"
    )
    assert (
        s1_full.rounds == s1_act.rounds
        and s2_full.rounds == s2_act.rounds
        and s1_full.messages_per_round == s1_act.messages_per_round
        and s2_full.messages_per_round == s2_act.messages_per_round
    ), "active-set engine statistics diverged from full stepping"

    return {
        "mesh": f"{size}x{size}",
        "faults": f,
        "fault_model": "clustered",
        "engine": _pair(
            "fabric full vs active-set",
            t_full,
            t_active,
            extra={"rounds_phase1": s1_full.rounds, "rounds_phase2": s2_full.rounds},
        ),
    }


def _naive_parallel_sweep(values, trials: int, seed: int, jobs: int):
    """The pre-executor ``jobs > 1`` behavior: a fresh process pool per
    sweep, one inter-process round trip per cell.  Kept here as the
    benchmark baseline for the amortized executor."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.analysis.sweep import _eval_cell

    tasks = [
        (_sweep_metric, value, vi, ti, trials, seed)
        for vi, value in enumerate(values)
        for ti in range(trials)
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_eval_cell, tasks))


def bench_sweep(size: int, f_values, trials: int, jobs: int, repeats: int) -> dict:
    """Sweep slice: naive cold-pool parallelism vs the warm executor.

    The headline pair is the old ``jobs > 1`` implementation (fresh
    pool per sweep, per-cell dispatch — the thing that made parallel
    sweeps *slower* than serial) against the amortized chunked
    executor, which calibrates chunk sizes, reuses one warm pool, and
    falls back to serial whenever parallelism cannot pay for itself
    (including on single-CPU boxes, where it never can).  ``vs_serial``
    records the executor leg against plain serial — the "jobs > 1 is
    never slower" guarantee.  All legs are timed min-of-repeats (the
    old single-shot numbers mixed pool spawn into the comparison) and
    must produce identical results.
    """
    values = [(size, f) for f in f_values]

    # Warm up (page cache, numpy dispatch) so the first timed leg is
    # not penalised, then interleave the serial and executor legs —
    # they are expected to be near-equal on boxes where the executor
    # falls back, and interleaving keeps clock drift out of the ratio.
    serial = sweep(values, _sweep_metric, trials=trials, seed=7)
    shared_pools.get(jobs)
    t_serial = t_exec = float("inf")
    parallel = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial = sweep(values, _sweep_metric, trials=trials, seed=7)
        t_serial = min(t_serial, time.perf_counter() - t0)
        t0 = time.perf_counter()
        parallel = sweep(values, _sweep_metric, trials=trials, seed=7, jobs=jobs)
        t_exec = min(t_exec, time.perf_counter() - t0)
    t_naive, _ = _best_of(
        lambda: _naive_parallel_sweep(values, trials, 7, jobs), repeats
    )

    assert serial == parallel, "parallel sweep diverged from serial"
    entry = _pair("sweep cold-pool vs executor", t_naive, t_exec)
    entry["serial_s"] = round(t_serial, 6)
    entry["vs_serial"] = round(t_serial / t_exec, 3) if t_exec > 0 else None
    print(f"{'sweep executor vs serial':>28}: {entry['vs_serial']}x")
    return {
        "mesh": f"{size}x{size}",
        "f_values": list(f_values),
        "trials": trials,
        "jobs": jobs,
        "sweep": entry,
    }


def bench_telemetry(size: int, f: int, repeats: int) -> dict:
    """Pipeline with telemetry off vs routed into a null sink.

    The off leg is the acceptance criterion: instrumentation must cost
    the untraced pipeline < 2% (pure guard branches).  The null-sink leg
    measures the full emit path (event construction + fan-out) for
    reference; it is allowed to cost more.
    """
    topo = Mesh2D(size, size)
    faults = clustered(
        topo.shape, f, np.random.default_rng(20010423), clusters=3, spread=2.0
    )

    # Interleave the two legs so clock drift between measurement blocks
    # cannot masquerade as overhead; a percent-level delta needs more
    # samples than the headline benchmarks.
    t_off = t_null = float("inf")
    ref = traced = None
    for _ in range(max(3 * repeats, 11)):
        t0 = time.perf_counter()
        ref = label_mesh(topo, faults)
        t_off = min(t_off, time.perf_counter() - t0)
        t0 = time.perf_counter()
        traced = label_mesh(topo, faults, telemetry=Telemetry.null())
        t_null = min(t_null, time.perf_counter() - t0)
    assert np.array_equal(ref.labels.unsafe, traced.labels.unsafe) and np.array_equal(
        ref.labels.enabled, traced.labels.enabled
    ), "telemetry changed the pipeline's labels"

    overhead = (t_null - t_off) / t_off if t_off > 0 else 0.0
    print(
        f"{'pipeline off vs null-sink':>28}: {t_off * 1e3:9.2f} ms -> "
        f"{t_null * 1e3:9.2f} ms ({100 * overhead:+.1f}%)"
    )
    return {
        "mesh": f"{size}x{size}",
        "faults": f,
        "fault_model": "clustered",
        "telemetry_off_s": round(t_off, 6),
        "telemetry_null_sink_s": round(t_null, 6),
        "null_sink_overhead": round(overhead, 4),
    }


def bench_incremental(size: int, f: int, updates: int, repeats: int) -> dict:
    """Online fault deltas through the service vs from-scratch labeling.

    A warm :class:`~repro.service.LabelingService` on an f-fault mesh
    absorbs a stream of single-fault updates (alternating inject and
    repair of the same cells, so every repeat starts from the same
    state).  The baseline is one full ``label_mesh`` of the standing
    fault set — what answering a single delta used to cost.  The stream
    leaves the fault set where it started, and the final planes are
    verified bit-for-bit against the from-scratch fixpoint.
    """
    from repro.service import LabelingService

    topo = Mesh2D(size, size)
    rng = np.random.default_rng(20010423)
    faults = uniform_random(topo.shape, f, rng)
    service = LabelingService(topo, faults=faults)

    # Pre-draw the update stream: distinct initially-nonfaulty cells,
    # each injected and then repaired (updates = 2 * cells events).
    free = np.flatnonzero(~faults.mask)
    cells = rng.choice(free, size=updates // 2, replace=False)
    stream = []
    for flat in cells:
        c = (int(flat) // size, int(flat) % size)
        stream.append(("inject", c))
        stream.append(("repair", c))

    t_scratch, scratch = _best_of(lambda: label_mesh(topo, faults), repeats)

    def run_stream():
        update = service.update
        for op, c in stream:
            if op == "inject":
                update(inject=(c,))
            else:
                update(repair=(c,))

    t_stream, _ = _best_of(run_stream, repeats)
    assert service.verify_against_scratch(), (
        "incremental service diverged from the from-scratch fixpoint"
    )
    assert np.array_equal(
        service.engine.labels.unsafe, scratch.labels.unsafe
    ) and np.array_equal(service.engine.labels.enabled, scratch.labels.enabled), (
        "service stream did not return to the baseline state"
    )

    n = len(stream)
    per_update = t_stream / n
    entry = _pair(
        "relabel scratch vs delta",
        t_scratch,
        per_update,
        extra={
            "updates": n,
            "updates_per_sec": round(n / t_stream, 1),
            "stream_s": round(t_stream, 6),
        },
    )
    print(
        f"{'service throughput':>28}: {entry['updates_per_sec']:,.0f} updates/sec"
    )

    # WAL-on leg: the identical stream through a durable service (every
    # delta hits the write-ahead log before the ack; checkpoints rotate
    # the log).  The interesting number is ``relative`` — how much of
    # the in-memory throughput survives durability.  Afterwards the WAL
    # directory is recovered and verified bit-for-bit, so the leg also
    # exercises the recovery path at benchmark scale.
    import tempfile

    from repro.service.recovery import recover_state

    with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as wal_dir:
        durable_service = LabelingService(
            topo,
            faults=faults,
            wal_dir=wal_dir,
            snapshot_every=max(512, updates // 4),
        )

        def run_stream_durable():
            update = durable_service.update
            for op, c in stream:
                if op == "inject":
                    update(inject=(c,))
                else:
                    update(repair=(c,))

        t_durable, _ = _best_of(run_stream_durable, repeats)
        durable_service.finalize()
        wal_stats = durable_service.stats()["wal"]
        recovered = recover_state(wal_dir)
        assert recovered.verified, "WAL recovery failed bit-for-bit check"
        assert recovered.engine.version == durable_service.version, (
            "recovered WAL state is not at the acknowledged version"
        )

    durable_ups = n / t_durable
    durable_entry = {
        "updates": n,
        "updates_per_sec": round(durable_ups, 1),
        "stream_s": round(t_durable, 6),
        "relative": round(durable_ups / (n / t_stream), 4),
        "wal_appended": wal_stats["appended"],
        "wal_bytes": wal_stats["bytes_written"],
        "snapshots": wal_stats["snapshots"],
        "recovery_replayed": recovered.replayed,
        "recovery_s": round(recovered.elapsed_s, 6),
    }
    print(
        f"{'durable throughput':>28}: {durable_ups:,.0f} updates/sec "
        f"({durable_entry['relative']:.2f}x in-memory, "
        f"{wal_stats['snapshots']} snapshots)"
    )
    # Admin-plane leg: the same stream through a metrics-traced service,
    # with and without a live AdminServer over the same registry being
    # scraped from a background thread at ~20 Hz — two orders of
    # magnitude hotter than any real scrape cadence, so the measured
    # cost upper-bounds production.  Bare and scraped runs are
    # *interleaved* (min of each across rounds) so machine drift hits
    # both legs equally — a sequential A-then-B timing of ~0.1 s streams
    # cannot resolve the 3% acceptance budget (relative >= 0.97).  The
    # scraper holds one persistent keep-alive connection: a fresh
    # connection per scrape makes ThreadingHTTPServer spawn a handler
    # thread per scrape, and on a single-CPU host that thread churn
    # (not the scrape work itself, which is ~1.7 ms) convoys the update
    # loop through the GIL.  Both legs share one registry, so the final
    # scrape is also checked against the snapshot exactly (the CI
    # live-scrape invariant).
    import http.client
    import threading

    from repro.obs import MetricsRegistry, Telemetry
    from repro.obs.exposition import AdminServer, parse_prometheus

    registry = MetricsRegistry()
    traced_service = LabelingService(
        topo, faults=faults, telemetry=Telemetry(metrics=registry)
    )

    def run_stream_traced():
        update = traced_service.update
        for op, c in stream:
            if op == "inject":
                update(inject=(c,))
            else:
                update(repair=(c,))

    scrapes = {"count": 0}
    scraping = threading.Event()
    stop_scraping = threading.Event()

    def scraper(host, port):
        conn = http.client.HTTPConnection(host, port, timeout=5)
        try:
            while not stop_scraping.is_set():
                if not scraping.is_set():
                    scraping.wait(0.01)
                    continue
                conn.request("GET", "/metrics")
                conn.getresponse().read()
                conn.request("GET", "/varz")
                conn.getresponse().read()
                scrapes["count"] += 1
                stop_scraping.wait(0.05)
        finally:
            conn.close()

    run_stream_traced()  # warm the traced path before timing either leg
    t_traced = t_admin = float("inf")
    with AdminServer(metrics=registry, varz=traced_service.stats) as admin:
        host, port = admin.address
        thread = threading.Thread(target=scraper, args=(host, port), daemon=True)
        thread.start()
        try:
            for _ in range(max(repeats, 10)):
                scraping.clear()
                time.sleep(0.02)  # let an in-flight scrape drain
                t0 = time.perf_counter()
                run_stream_traced()
                t_traced = min(t_traced, time.perf_counter() - t0)
                scraping.set()
                t0 = time.perf_counter()
                run_stream_traced()
                t_admin = min(t_admin, time.perf_counter() - t0)
            scraping.clear()
        finally:
            stop_scraping.set()
            thread.join(timeout=5)
        # The live scrape must agree exactly with the registry snapshot.
        conn = http.client.HTTPConnection(host, port, timeout=5)
        try:
            conn.request("GET", "/metrics")
            scraped = parse_prometheus(conn.getresponse().read().decode("utf-8"))
        finally:
            conn.close()
        snap = registry.snapshot()
        assert {k: float(v) for k, v in snap["counters"].items()} == scraped[
            "counters"
        ], "live /metrics scrape disagrees with the registry snapshot"

    admin_ups = n / t_admin
    admin_entry = {
        "updates": n,
        "updates_per_sec": round(admin_ups, 1),
        "stream_s": round(t_admin, 6),
        "relative": round(admin_ups / (n / t_traced), 4),
        "scrapes": scrapes["count"],
    }
    print(
        f"{'admin-scraped throughput':>28}: {admin_ups:,.0f} updates/sec "
        f"({admin_entry['relative']:.2f}x unscraped, "
        f"{scrapes['count']} scrapes)"
    )

    stats = service.stats()
    return {
        "mesh": f"{size}x{size}",
        "faults": f,
        "fault_model": "uniform",
        "service": entry,
        "durable": durable_entry,
        "admin": admin_entry,
        "cache": stats["cache"],
    }


def _sharded_workload(size: int):
    """The sharding workload family: clustered faults, density matched
    to the acceptance workload (one fault per 40k cells)."""
    topo = Mesh2D(size, size)
    n = max(32, size * size // 40_000)
    faults = clustered(
        topo.shape, n, np.random.default_rng(20010423),
        clusters=max(3, n // 50), spread=2.0,
    )
    return topo, faults.mask, n


def _run_sharded(topo, faulty, jobs: int):
    """Both sharded fixpoints with one auto tiling; returns the planes
    and tile-round counts."""
    tiling = parse_shard_spec("auto", topo.shape, jobs)
    unsafe, r1 = unsafe_fixpoint_sharded(topo, faulty, tiling=tiling, jobs=jobs)
    enabled, r2 = enabled_fixpoint_sharded(
        topo, faulty, unsafe, tiling=tiling, jobs=jobs
    )
    return unsafe, enabled, r1, r2, tiling


def bench_sharded(
    gate_size: int,
    strong_size: int,
    weak_base: int,
    jobs_list,
    big_size,
    repeats: int,
) -> dict:
    """Tile-sharded halo-exchange fixpoints: gate, scaling curves, 100M.

    * **gate** — the CI acceptance pair: both global dense fixpoints on
      one array vs the sharded driver with ``jobs=2``, same labels
      required bit-for-bit.  Sharding wins even with the pool overhead
      because only tiles whose framed region holds faults are ever
      solved, while the dense kernels sweep the full plane every Jacobi
      round.  The work-optimal global frontier kernel is also recorded
      (un-gated): serially it beats sharding on sparse instances;
      sharding pays through process parallelism and activity locality.
    * **strong scaling** — fixed ``strong_size`` mesh across
      ``jobs_list`` worker counts (plus the serial tiled leg).
    * **weak scaling** — ``weak_base`` squared cells per worker, so the
      mesh grows as ``sqrt(jobs)`` per side; efficiency is
      ``t(1) / t(j)`` (1.0 = perfect).
    * **100M cells** — a ``big_size`` squared completion run (full mode
      only): the point of the shared-memory design is that this fits
      without ever pickling a label plane.

    The host CPU count is recorded; on a single-CPU box the multi-worker
    legs honestly show pool overhead instead of speedup.
    """
    import os as _os

    report: dict = {"cpus": _os.cpu_count()}

    # -- gate ---------------------------------------------------------
    topo, faulty, n = _sharded_workload(gate_size)
    t_dense, (unsafe_d, r1) = _best_of(
        lambda: unsafe_fixpoint(topo, faulty), repeats
    )
    t_dense2, (enabled_d, r2) = _best_of(
        lambda: enabled_fixpoint(topo, faulty, unsafe_d), repeats
    )
    t_frontier, _ = _best_of(
        lambda: (
            enabled_fixpoint_sparse(
                topo, faulty, unsafe_fixpoint_sparse(topo, faulty)[0]
            )
        ),
        repeats,
    )
    t_shard, (unsafe_s, enabled_s, tr1, tr2, tiling) = _best_of(
        lambda: _run_sharded(topo, faulty, 2), repeats
    )
    assert np.array_equal(unsafe_d, unsafe_s) and np.array_equal(
        enabled_d, enabled_s
    ), "sharded fixpoints diverged from the global kernels"
    gate = _pair(
        f"sharded {gate_size} j2 vs dense",
        t_dense + t_dense2,
        t_shard,
        extra={
            "mesh": f"{gate_size}x{gate_size}",
            "faults": n,
            "tiles": f"{tiling.tiles_x}x{tiling.tiles_y}",
            "tile_rounds": [tr1, tr2],
            "jacobi_rounds": [r1, r2],
            "frontier_global_s": round(t_frontier, 6),
        },
    )
    report["gate"] = gate

    # -- strong scaling ----------------------------------------------
    topo, faulty, n = _sharded_workload(strong_size)
    strong = {"mesh": f"{strong_size}x{strong_size}", "faults": n, "legs": {}}
    t_serial = None
    reference = None
    for jobs in jobs_list:
        t, (unsafe_s, enabled_s, tr1, tr2, tiling) = _best_of(
            lambda: _run_sharded(topo, faulty, jobs), repeats
        )
        if reference is None:
            reference = (unsafe_s, enabled_s)
            t_serial = t
        else:
            assert np.array_equal(reference[0], unsafe_s) and np.array_equal(
                reference[1], enabled_s
            ), f"sharded jobs={jobs} diverged from jobs={jobs_list[0]}"
        strong["legs"][str(jobs)] = {
            "seconds": round(t, 6),
            "speedup_vs_serial": round(t_serial / t, 3),
            "tiles": f"{tiling.tiles_x}x{tiling.tiles_y}",
        }
        print(
            f"{'sharded strong jobs=' + str(jobs):>28}: {t * 1e3:9.2f} ms "
            f"({strong['legs'][str(jobs)]['speedup_vs_serial']}x vs serial)"
        )
    report["strong"] = strong

    # -- weak scaling -------------------------------------------------
    weak = {"base": f"{weak_base}x{weak_base} per worker", "legs": {}}
    t_one = None
    for jobs in jobs_list:
        size = int(round(weak_base * jobs ** 0.5))
        topo, faulty, n = _sharded_workload(size)
        t, _ = _best_of(lambda: _run_sharded(topo, faulty, jobs), repeats)
        if t_one is None:
            t_one = t
        weak["legs"][str(jobs)] = {
            "mesh": f"{size}x{size}",
            "faults": n,
            "seconds": round(t, 6),
            "efficiency": round(t_one / t, 3),
        }
        print(
            f"{'sharded weak jobs=' + str(jobs):>28}: {size}x{size} "
            f"{t * 1e3:9.2f} ms (eff {weak['legs'][str(jobs)]['efficiency']})"
        )
    report["weak"] = weak

    # -- 100M-cell completion ----------------------------------------
    if big_size:
        topo, faulty, n = _sharded_workload(big_size)
        t0 = time.perf_counter()
        _, _, tr1, tr2, tiling = _run_sharded(topo, faulty, 1)
        t_big = time.perf_counter() - t0
        report["big"] = {
            "mesh": f"{big_size}x{big_size}",
            "cells": big_size * big_size,
            "faults": n,
            "tiles": f"{tiling.tiles_x}x{tiling.tiles_y}",
            "tile_rounds": [tr1, tr2],
            "seconds": round(t_big, 6),
            "cells_per_sec": round(big_size * big_size / t_big),
        }
        print(
            f"{'sharded 100M cells':>28}: {big_size}x{big_size} in "
            f"{t_big:.2f} s ({report['big']['cells_per_sec']:,} cells/s)"
        )
    return report


def _routing_gate_workload(size: int, faults: int, packets: int, rate: float):
    """The routing-gate pair's fixed workload.

    Clustered faults (seed 7) on a ``size`` mesh, blocks view, and a
    uniform batched workload (seed 3).  The gate uses the XY kernel:
    both engines share its decide step, so the pair isolates the
    engine cost — scalar per-packet Python loop vs fused numpy passes.
    """
    topo = Mesh2D(size, size)
    fset = clustered(
        topo.shape, faults, np.random.default_rng(7), clusters=5, spread=1.6
    )
    view = FaultModelView.from_blocks(label_mesh(topo, fset))
    traffic = synthetic_traffic(
        view, packets, np.random.default_rng(3), injection_rate=rate
    )
    return view, traffic


def _routing_gate_pair(size: int, faults: int, packets: int, rate: float, repeats: int):
    """Time reference vs batched on the gate workload; verify equality.

    The reference engine runs once (it is the slow leg by an order of
    magnitude); the batched engine takes best-of-``repeats`` because at
    sub-second runtimes machine noise is the dominant error term.
    """
    view, traffic = _routing_gate_workload(size, faults, packets, rate)
    t0 = time.perf_counter()
    slow = BatchedNetwork(view, kernel="xy", engine="reference").run(traffic)
    t_ref = time.perf_counter() - t0
    t_batched, fast = _best_of(
        lambda: BatchedNetwork(view, kernel="xy").run(traffic), repeats
    )
    equal = fast.equals(slow)
    return t_ref, t_batched, fast, equal


def bench_routing(
    gate_size: int,
    gate_packets: int,
    payoff_packets: int,
    worm_packets: int,
    campaign,
    repeats: int,
) -> dict:
    """Batched traffic engine: gate pair, payoff deltas, oracle, campaign."""
    gate_faults, gate_rate = 100, 5000.0

    # -- gate: scalar reference engine vs batched numpy engine --------
    t_ref, t_batched, fast, equal = _routing_gate_pair(
        gate_size, gate_faults, gate_packets, gate_rate, repeats
    )
    assert equal, "batched engine diverged from the scalar reference"
    gate = _pair(
        "routing scalar vs batched",
        t_ref,
        t_batched,
        extra={
            "mesh": f"{gate_size}x{gate_size}",
            "faults": gate_faults,
            "packets": gate_packets,
            "kernel": "xy",
            "rate": gate_rate,
            "delivery_rate": round(fast.delivery_rate, 6),
            "packets_per_sec": round(gate_packets / t_batched),
            "equal": True,
        },
    )

    # -- payoff: region views vs the rectangle block view -------------
    # Identical contending traffic (drawn from the intersection of the
    # enabled sets) through the rectangle-detour kernel under all three
    # views; the region views' extra enabled nodes turn directly into
    # accepted throughput and delivered latency.
    topo = Mesh2D(64, 64)
    fset = clustered(
        topo.shape, 100, np.random.default_rng(13), clusters=4, spread=2.0
    )
    result_2a = label_mesh(topo, fset, SafetyDefinition.DEF_2A)
    result_2b = label_mesh(topo, fset, SafetyDefinition.DEF_2B)
    views = {
        "rect-fb": FaultModelView.from_blocks(result_2b),
        "regions-2a": FaultModelView.from_regions(result_2a),
        "regions-2b": FaultModelView.from_regions(result_2b),
    }
    inter = np.ones(topo.shape, dtype=bool)
    for v in views.values():
        inter &= v.enabled
    traffic = synthetic_traffic(
        FaultModelView(topo, inter),
        payoff_packets,
        np.random.default_rng(3),
        injection_rate=50.0,
    )
    payoff = {"mesh": "64x64", "faults": 100, "packets": payoff_packets, "views": {}}
    for name, v in views.items():
        res = BatchedNetwork(v, kernel="detour").run(traffic)
        payoff["views"][name] = {
            "enabled": v.num_enabled,
            "delivery_rate": round(res.delivery_rate, 4),
            "throughput": round(res.throughput, 3),
            "mean_latency": round(res.mean_latency, 2),
            "p95_latency": res.p95_latency,
            "cycles": res.cycles,
        }
        print(
            f"{'payoff ' + name:>28}: thr {res.throughput:7.2f} "
            f"lat {res.mean_latency:6.1f} delivery {res.delivery_rate:.3f}"
        )

    # -- scalar wormhole oracle at the 1e5-packet scale ----------------
    # The flit-level simulator stays the bit-level oracle; after the
    # cursor/deque/insort fixes it must take this packet count in
    # linear time.
    worm_mesh = Mesh2D(32, 32)
    worm_view = FaultModelView(worm_mesh, np.ones(worm_mesh.shape, dtype=bool))
    worms = uniform_traffic(
        worm_view, worm_packets, np.random.default_rng(15),
        packet_length=2, injection_rate=4.0,
    )
    t0 = time.perf_counter()
    worm_res = WormholeNetwork(worm_mesh, xy_hops(), num_vcs=2).run(worms)
    t_worm = time.perf_counter() - t0
    assert worm_res.delivery_rate > 0.999, "wormhole oracle lost packets"
    wormhole = {
        "mesh": "32x32",
        "packets": worm_packets,
        "seconds": round(t_worm, 6),
        "packets_per_sec": round(worm_packets / t_worm),
        "delivery_rate": round(worm_res.delivery_rate, 6),
    }
    print(
        f"{'wormhole oracle 1e5-scale':>28}: {worm_packets} worms in "
        f"{t_worm:.2f} s ({wormhole['packets_per_sec']:,} pkts/s)"
    )

    report = {
        "gate": gate,
        "payoff": payoff,
        "wormhole": wormhole,
    }

    # -- full mode: the million-packet 256x256 saturation campaign -----
    if campaign:
        camp_size, camp_packets = campaign
        topo = Mesh2D(camp_size, camp_size)
        fset = clustered(
            topo.shape, 800, np.random.default_rng(7), clusters=12, spread=2.5
        )
        result_2a = label_mesh(topo, fset, SafetyDefinition.DEF_2A)
        result_2b = label_mesh(topo, fset, SafetyDefinition.DEF_2B)
        views = {
            "rect-fb": FaultModelView.from_blocks(result_2b),
            "regions-2a": FaultModelView.from_regions(result_2a),
            "regions-2b": FaultModelView.from_regions(result_2b),
        }
        inter = np.ones(topo.shape, dtype=bool)
        for v in views.values():
            inter &= v.enabled
        shared = FaultModelView(topo, inter)
        rates = [200.0, 800.0, 3200.0]
        campaign_report = {
            "mesh": f"{camp_size}x{camp_size}",
            "faults": 800,
            "packets_per_point": camp_packets,
            "rates": rates,
            "views": {},
        }
        for name, v in views.items():
            t0 = time.perf_counter()
            curve = injection_sweep(
                v,
                rates,
                camp_packets,
                seed=5,
                kernel="detour",
                endpoint_view=shared,
                view_label=name,
                drain_factor=1.5,
            )
            t_curve = time.perf_counter() - t0
            campaign_report["views"][name] = {
                "enabled": v.num_enabled,
                "seconds": round(t_curve, 2),
                "saturation_rate": curve.saturation_rate,
                "saturation_throughput": round(curve.saturation_throughput, 2),
                "points": [
                    {
                        "rate": p.rate,
                        "delivery_rate": round(p.delivery_rate, 4),
                        "throughput": round(p.throughput, 2),
                        "mean_latency": round(p.mean_latency, 2),
                        "p99_latency": p.p99_latency,
                        "stuck": p.stuck,
                    }
                    for p in curve.points
                ],
            }
            print(
                f"{'campaign ' + name:>28}: knee {curve.saturation_rate} "
                f"thr {curve.saturation_throughput:8.2f} ({t_curve:.1f} s)"
            )
        report["campaign"] = campaign_report
    return report


#: The CI gate: the batched engine must beat the scalar reference by at
#: least this factor on the gate workload (bit-for-bit equal results).
_ROUTING_GATE_MIN_SPEEDUP = 20.0


def gate_routing(
    size: int = 160, packets: int = 150_000, faults: int = 100, rate: float = 5000.0
) -> int:
    """The ``--gate-routing`` CI mode: quick pass/fail, no JSON."""
    t_ref, t_batched, _, equal = _routing_gate_pair(size, faults, packets, rate, 3)
    if not equal:
        print("gate-routing: FAIL (batched diverged from the scalar reference)")
        return 1
    speedup = t_ref / t_batched
    print(
        f"gate-routing: {size}x{size} ({faults} faults, {packets} packets) "
        f"scalar {t_ref:.2f} s vs batched {t_batched:.2f} s -> "
        f"{speedup:.1f}x (need >= {_ROUTING_GATE_MIN_SPEEDUP}x)"
    )
    if speedup < _ROUTING_GATE_MIN_SPEEDUP:
        print("gate-routing: FAIL (speedup below gate)")
        return 1
    print("gate-routing: OK")
    return 0


#: The CI gate: sharded ``jobs=2`` must beat the dense single-array
#: fixpoints by at least this factor on the gate workload.
_SHARDED_GATE_MIN_SPEEDUP = 1.2


def gate_sharded(gate_size: int = 2000, complete_size: int = 4000) -> int:
    """The ``--gate-sharded`` CI mode: quick pass/fail, no JSON.

    Asserts the sharded ``jobs=2`` leg beats the dense single-array
    baseline by >= 1.2x on a ``gate_size`` mesh (bit-for-bit equal
    labels), then requires a ``complete_size`` sharded run to finish.
    """
    topo, faulty, n = _sharded_workload(gate_size)
    t_dense, (unsafe_d, _) = _best_of(lambda: unsafe_fixpoint(topo, faulty), 2)
    t_dense2, (enabled_d, _) = _best_of(
        lambda: enabled_fixpoint(topo, faulty, unsafe_d), 2
    )
    t_shard, (unsafe_s, enabled_s, _, _, _) = _best_of(
        lambda: _run_sharded(topo, faulty, 2), 2
    )
    if not (
        np.array_equal(unsafe_d, unsafe_s) and np.array_equal(enabled_d, enabled_s)
    ):
        print("gate-sharded: FAIL (labels diverged from the global kernels)")
        return 1
    speedup = (t_dense + t_dense2) / t_shard
    print(
        f"gate-sharded: {gate_size}x{gate_size} ({n} faults) "
        f"dense {(t_dense + t_dense2) * 1e3:.1f} ms vs sharded jobs=2 "
        f"{t_shard * 1e3:.1f} ms -> {speedup:.2f}x "
        f"(need >= {_SHARDED_GATE_MIN_SPEEDUP}x)"
    )
    if speedup < _SHARDED_GATE_MIN_SPEEDUP:
        print("gate-sharded: FAIL (speedup below gate)")
        return 1
    topo, faulty, n = _sharded_workload(complete_size)
    t0 = time.perf_counter()
    _run_sharded(topo, faulty, 2)
    print(
        f"gate-sharded: {complete_size}x{complete_size} completed in "
        f"{time.perf_counter() - t0:.2f} s"
    )
    print("gate-sharded: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads for CI smoke runs"
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="workers for the parallel sweep leg"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_perf.json"),
        help="output path (default: BENCH_perf.json at the repo root)",
    )
    parser.add_argument(
        "--gate-sharded",
        action="store_true",
        help="CI mode: run only the sharded speedup/completion gate",
    )
    parser.add_argument(
        "--gate-routing",
        action="store_true",
        help="CI mode: run only the batched-vs-scalar routing gate",
    )
    args = parser.parse_args(argv)

    if args.gate_sharded:
        return gate_sharded()
    if args.gate_routing:
        return gate_routing()

    if args.quick:
        kernel_size, kernel_f, repeats = 300, 80, 2
        fabric_size, fabric_f = 20, 24
        sweep_size, sweep_fs, sweep_trials, sweep_repeats = 96, [0, 16, 32], 6, 3
        incr_size, incr_f, incr_updates = 256, 40, 2000
        shard_gate, shard_strong, shard_weak = 600, 800, 320
        shard_jobs, shard_big = [1, 2], None
        route_size, route_packets = 160, 150_000
        route_payoff, route_worms, route_campaign = 60_000, 20_000, None
    else:
        kernel_size, kernel_f, repeats = 500, 100, 3
        fabric_size, fabric_f = 32, 48
        sweep_size, sweep_fs, sweep_trials, sweep_repeats = (
            100,
            [0, 25, 50, 75, 100],
            10,
            5,
        )
        incr_size, incr_f, incr_updates = 1000, 100, 20000
        shard_gate, shard_strong, shard_weak = 2000, 4000, 1000
        shard_jobs, shard_big = [1, 2, 4, 8], 10000
        route_size, route_packets = 160, 150_000
        route_payoff, route_worms = 100_000, 100_000
        route_campaign = (256, 1_000_000)

    report = {
        "schema": 1,
        "generated_by": "benchmarks/perf_baseline.py",
        "version": __version__,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "kernels": bench_kernels(kernel_size, kernel_f, repeats),
        "fabric": bench_fabric(fabric_size, fabric_f, repeats),
        "sweep": bench_sweep(
            sweep_size, sweep_fs, sweep_trials, args.jobs, sweep_repeats
        ),
        "telemetry": bench_telemetry(kernel_size, kernel_f, repeats),
        "incremental": bench_incremental(incr_size, incr_f, incr_updates, repeats),
        "sharded": bench_sharded(
            shard_gate, shard_strong, shard_weak, shard_jobs, shard_big, repeats
        ),
        "routing": bench_routing(
            route_size, route_packets, route_payoff, route_worms,
            route_campaign, repeats,
        ),
    }

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
