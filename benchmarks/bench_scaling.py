"""Ablation A5: scaling of the two execution backends.

The distributed fabric backend is the faithful reproduction of the
paper's per-node protocol; the vectorized backend is the same fixpoint
as whole-grid NumPy sweeps.  This benchmark confirms they agree at
every size and quantifies the speedup of vectorization — the HPC-guide
workflow of "make it work, then profile, then vectorize the bottleneck".
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import uniform_random
from repro.mesh import Mesh2D

SIZES = (16, 32, 64)
FAULT_FRACTION = 0.01


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for n in SIZES:
        mesh = Mesh2D(n, n)
        rng = np.random.default_rng(n)
        faults = uniform_random(mesh.shape, max(1, int(FAULT_FRACTION * n * n)), rng)

        t0 = time.perf_counter()
        rv = label_mesh(mesh, faults, backend="vectorized")
        t_vec = time.perf_counter() - t0

        t0 = time.perf_counter()
        rd = label_mesh(mesh, faults, backend="distributed")
        t_dist = time.perf_counter() - t0

        assert np.array_equal(rv.labels.enabled, rd.labels.enabled)
        msgs = rd.stats_phase1.total_messages + rd.stats_phase2.total_messages
        rows.append(
            [n, len(faults), rv.rounds_phase1, t_vec * 1e3, t_dist * 1e3, msgs]
        )
    return rows


def test_scaling_table(measurements, emit):
    emit(
        "scaling_backends",
        format_table(
            ["n", "faults", "rounds", "vectorized ms", "distributed ms", "messages"],
            measurements,
            title="Backend scaling on n x n meshes (1% uniform faults)",
        ),
    )


def test_backends_agree_at_every_size(measurements):
    # Agreement is asserted inside the fixture; here we just confirm all
    # sizes were measured.
    assert [row[0] for row in measurements] == list(SIZES)


def test_vectorized_faster_at_scale(measurements):
    big = measurements[-1]
    assert big[3] < big[4], "vectorized backend should win at the largest size"


@pytest.mark.parametrize("n", SIZES)
def test_vectorized_kernel_benchmark(benchmark, n):
    mesh = Mesh2D(n, n)
    rng = np.random.default_rng(n)
    faults = uniform_random(mesh.shape, max(1, int(FAULT_FRACTION * n * n)), rng)
    benchmark(lambda: label_mesh(mesh, faults, backend="vectorized"))
