"""Shared benchmark utilities.

Every benchmark regenerates one paper artefact (a Figure-5 panel, or an
ablation listed in DESIGN.md): it prints the series as a plain-text
table, writes the same table under ``benchmarks/results/``, asserts the
qualitative *shape* the paper reports, and times a representative
kernel with pytest-benchmark.

Absolute values are not compared against the paper: the authors'
simulator and RNG are unavailable, so EXPERIMENTS.md records our
measured numbers next to the paper's qualitative claims instead.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a table and persist it under benchmarks/results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
