"""Wormhole-level experiments: deadlock phenomena and the fault-model
payoff at the flit level.

Two studies on the cycle-level wormhole simulator:

1. **Deadlock demonstrations** — the classical results the paper's
   Section 1 leans on: dimension-order (XY) routing needs one virtual
   channel and never deadlocks; cyclic routing on one VC deadlocks; a
   dateline VC discipline repairs it with two VCs ("relatively few
   virtual channels").

2. **Latency under load** — uniform traffic swept over injection rates
   on a faulty mesh, carried by detour routing over the rectangular
   block model vs the refined region model.  More enabled nodes means
   more usable endpoints and shorter detours, visible as lower mean
   latency at equal load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import clustered
from repro.mesh import Mesh2D
from repro.network import (
    WormholeNetwork,
    WormPacket,
    block_detour_hops,
    clockwise_ring_hops,
    dateline_vc_policy,
    uniform_traffic,
    xy_hops,
)
from repro.routing import FaultModelView

MESH = Mesh2D(16, 16)
RING = [(0, 0), (1, 0), (1, 1), (0, 1)]
RATES = (0.05, 0.1, 0.2, 0.4)
PACKETS = 150


@pytest.fixture(scope="module")
def deadlock_rows():
    rows = []
    # XY under heavy uniform load.
    view = FaultModelView(MESH, np.ones(MESH.shape, dtype=bool))
    rng = np.random.default_rng(3)
    traffic = uniform_traffic(view, 200, rng, packet_length=4, injection_rate=1.0)
    res = WormholeNetwork(MESH, xy_hops(), num_vcs=1, buffer_depth=2).run(traffic)
    rows.append(["xy / 1 VC", "uniform load", res.deadlocked, res.delivery_rate])

    def ring_packets():
        return [
            WormPacket(i, RING[i], RING[(i + 3) % 4], length=4, inject_cycle=0)
            for i in range(4)
        ]

    res = WormholeNetwork(
        Mesh2D(4, 4), clockwise_ring_hops(RING), num_vcs=1, buffer_depth=1,
        watchdog=100,
    ).run(ring_packets())
    rows.append(["ring / 1 VC", "4 cyclic worms", res.deadlocked, res.delivery_rate])

    res = WormholeNetwork(
        Mesh2D(4, 4),
        clockwise_ring_hops(RING),
        num_vcs=2,
        buffer_depth=1,
        vc_policy=dateline_vc_policy(RING),
        watchdog=300,
    ).run(ring_packets())
    rows.append(
        ["ring / 2 VC dateline", "4 cyclic worms", res.deadlocked, res.delivery_rate]
    )
    return rows


def test_deadlock_table(deadlock_rows, emit):
    emit(
        "wormhole_deadlock",
        format_table(
            ["configuration", "traffic", "deadlocked", "delivered"],
            deadlock_rows,
            title="Wormhole deadlock phenomena",
        ),
    )
    xy, ring1, ring2 = deadlock_rows
    assert xy[2] is False and xy[3] == 1.0
    assert ring1[2] is True
    assert ring2[2] is False and ring2[3] == 1.0


@pytest.fixture(scope="module")
def load_rows():
    from repro.network import source_routed_traffic
    from repro.routing import FRingRouter, WallRouter, sample_pairs

    rng = np.random.default_rng(17)
    faults = clustered(MESH.shape, 18, rng, clusters=2, spread=1.5)
    labeled = label_mesh(MESH, faults)
    vb = FaultModelView.from_blocks(labeled)
    vr = FaultModelView.from_regions(labeled)
    # Endpoints valid under both models, routed by each model's own
    # detour router (paths delivered to the network as source routes).
    pairs = sample_pairs(vb, PACKETS, rng)
    configs = {
        "blocks": (vb, FRingRouter(vb)),
        "regions": (vr, WallRouter(vr)),
    }
    rows = []
    for rate in RATES:
        for name, (view, router) in configs.items():
            traffic_rng = np.random.default_rng(int(rate * 1000))
            traffic, unroutable = source_routed_traffic(
                router, pairs, traffic_rng, packet_length=4, injection_rate=rate
            )
            net = WormholeNetwork(MESH, num_vcs=2, buffer_depth=2, watchdog=3000)
            res = net.run(traffic, max_cycles=60_000)
            rows.append(
                [
                    rate,
                    name,
                    view.num_enabled,
                    unroutable,
                    res.delivery_rate,
                    res.mean_latency,
                    res.throughput,
                    len(res.stuck) + (1 if res.deadlocked else 0) > 0,
                ]
            )
    return rows


def test_load_sweep_table(load_rows, emit):
    emit(
        "wormhole_load",
        format_table(
            [
                "rate",
                "model",
                "enabled",
                "unroutable",
                "delivered",
                "latency",
                "thr",
                "congestion",
            ],
            load_rows,
            title=(
                f"Wormhole latency under load ({MESH.width}x{MESH.height}, "
                f"18 clustered faults, {PACKETS} source-routed packets of 4 flits)"
            ),
        ),
    )
    # At the gentle end of the sweep everything must flow.
    gentle = [r for r in load_rows if r[0] == RATES[0]]
    for row in gentle:
        assert row[4] > 0.95, row


def test_region_model_offers_more_endpoints(load_rows):
    by_model = {}
    for row in load_rows:
        by_model.setdefault(row[1], set()).add(row[2])
    assert max(by_model["regions"]) >= max(by_model["blocks"])


def test_latency_rises_with_load(load_rows):
    block_lat = [r[5] for r in load_rows if r[1] == "blocks"]
    assert block_lat[-1] >= block_lat[0] - 1.0


def test_wormhole_kernel_benchmark(benchmark):
    view = FaultModelView(Mesh2D(8, 8), np.ones((8, 8), dtype=bool))
    rng = np.random.default_rng(1)
    traffic = uniform_traffic(view, 60, rng, packet_length=4, injection_rate=0.5)
    net = WormholeNetwork(Mesh2D(8, 8), xy_hops(), num_vcs=1, buffer_depth=2)
    benchmark(lambda: net.run(list(traffic)))
