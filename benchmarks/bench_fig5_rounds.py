"""Figure 5 (a)/(b): rounds to form faulty blocks and disabled regions.

Paper setup: 100x100 mesh, f random faults with 0 <= f <= 100, averaged
over trials; the y axis is the average of the per-trial maximum round
counts for the faulty-block phase and (separately) the disabled-region
phase.  The paper's two panels correspond to the two safe/unsafe
definitions it presents; panel (a) is reproduced with Definition 2a and
panel (b) with Definition 2b.

Expected shape (paper Section 5): both curves grow slowly with f and
stay *much lower than the mesh diameter* (198); the disabled-region
curve stays at or below the faulty-block curve plus a small constant,
"because disabled regions are generated out of faulty blocks".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import run_fig5
from repro.core import SafetyDefinition, label_mesh
from repro.faults import uniform_random
from repro.mesh import Mesh2D

TRIALS = 20
F_VALUES = tuple(range(0, 101, 10))


@pytest.fixture(scope="module")
def curves():
    return {
        d: run_fig5(d, f_values=F_VALUES, trials=TRIALS, seed=20010423)
        for d in SafetyDefinition
    }


@pytest.mark.parametrize(
    "panel,definition",
    [("a", SafetyDefinition.DEF_2A), ("b", SafetyDefinition.DEF_2B)],
)
def test_fig5_rounds_panel(curves, emit, panel, definition):
    curve = curves[definition]
    emit(f"fig5_{panel}_rounds_def{definition.value}", curve.as_table())

    diameter = 198
    for p in curve.points:
        # "Much lower than the diameter of the mesh."
        assert p.rounds_fb.mean < diameter / 10
        assert p.rounds_dr.mean < diameter / 10
    # Zero faults take zero rounds; the curve never explodes with f.
    assert curve.points[0].rounds_fb.mean == 0.0
    assert curve.points[-1].rounds_fb.mean <= 6.0


def test_dr_rounds_tracking_fb_rounds(curves, emit):
    # The paper: the average for disabled regions is lower than for
    # faulty blocks (regions are carved out of already-formed blocks).
    # With sparse uniform faults both are near zero, so assert the weak
    # ordering with a one-round slack.
    rows = []
    for d, curve in curves.items():
        for p in curve.points:
            rows.append([d.value, p.f, p.rounds_fb.mean, p.rounds_dr.mean])
            assert p.rounds_dr.mean <= p.rounds_fb.mean + 1.0
    from repro.analysis import format_table

    emit(
        "fig5_rounds_fb_vs_dr",
        format_table(["def", "f", "rounds(FB)", "rounds(DR)"], rows,
                     title="Rounds: faulty blocks vs disabled regions"),
    )


def test_label_kernel_benchmark(benchmark):
    """Time the full two-phase pipeline at the paper's largest point."""
    mesh = Mesh2D(100, 100)
    rng = np.random.default_rng(0)
    faults = uniform_random(mesh.shape, 100, rng)
    benchmark(lambda: label_mesh(mesh, faults, SafetyDefinition.DEF_2B))
