"""Protocol communication cost: literal vs change-driven broadcasting.

The paper's pseudo-code has every node exchange its status with its
neighbours *every round*; an obvious engineering refinement is to
re-broadcast only on change (the labels and round counts are provably
identical — property-tested in the suite).  This benchmark reports the
message-count gap, a quantity papers in this literature routinely cite
as the cost of block construction and maintenance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import clustered, uniform_random
from repro.mesh import Mesh2D

MESH = Mesh2D(40, 40)
TRIALS = 5


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(17)
    rows = []
    for trial in range(TRIALS):
        faults = clustered(MESH.shape, 40, rng, clusters=2, spread=2.0)
        quiet = label_mesh(MESH, faults, backend="distributed", chatty=False)
        loud = label_mesh(MESH, faults, backend="distributed", chatty=True)
        assert np.array_equal(quiet.labels.enabled, loud.labels.enabled)
        q = quiet.stats_phase1.total_messages + quiet.stats_phase2.total_messages
        l = loud.stats_phase1.total_messages + loud.stats_phase2.total_messages
        rows.append(
            [
                trial,
                quiet.rounds_phase1 + quiet.rounds_phase2,
                q,
                l,
                l / q if q else float("nan"),
            ]
        )
    return rows


def test_protocol_cost_table(measurements, emit):
    emit(
        "protocol_cost",
        format_table(
            ["trial", "rounds", "msgs(on-change)", "msgs(every-round)", "ratio"],
            measurements,
            title="Message cost: change-driven vs literal every-round exchange (40x40)",
        ),
    )


def test_every_round_costs_more(measurements):
    for row in measurements:
        assert row[3] >= row[2]


def test_chatty_cost_grows_with_rounds(measurements):
    # Every-round traffic is proportional to executed rounds; the ratio
    # must exceed 1 whenever any labeling round was needed.
    for row in measurements:
        if row[1] > 0:
            assert row[4] > 1.0


def test_protocol_kernel_benchmark(benchmark):
    rng = np.random.default_rng(6)
    faults = uniform_random(MESH.shape, 20, rng)
    benchmark(lambda: label_mesh(MESH, faults, backend="distributed"))
