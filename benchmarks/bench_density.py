"""Density study: block growth, imprisonment and fragmentation.

Quantifies the paper's Section-5 remark that "a random distribution
tends to generate a set of small faulty blocks" — and maps where that
stops being true.  As density rises, blocks merge (the largest block
grows superlinearly), the fraction of healthy nodes imprisoned climbs,
and eventually the enabled subgraph fragments; the freed fraction shows
how far phase 2 counteracts each stage.
"""

from __future__ import annotations

import pytest

from repro.analysis import density_study, format_table
from repro.mesh import Mesh2D

DENSITIES = (0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15)
MESH = Mesh2D(64, 64)
TRIALS = 8


@pytest.fixture(scope="module")
def points():
    return density_study(MESH, DENSITIES, trials=TRIALS, seed=2024)


def test_density_table(points, emit):
    rows = [
        [
            p.density,
            p.f,
            p.largest_block.mean,
            100 * p.imprisoned_fraction.mean,
            100 * p.freed_fraction.mean,
            p.enabled_components.mean,
            100 * p.largest_enabled_fraction.mean,
        ]
        for p in points
    ]
    emit(
        "density_study",
        format_table(
            [
                "density",
                "f",
                "largest blk",
                "imprisoned %",
                "freed %",
                "#enab comps",
                "giant comp %",
            ],
            rows,
            title=f"Fault-density study on a {MESH.width}x{MESH.height} mesh "
            f"({TRIALS} trials)",
        ),
    )


def test_small_blocks_in_paper_regime(points):
    # The paper's f <= 100 on 100x100 is density <= 1%: blocks stay tiny.
    paper_like = [p for p in points if 0 < p.density <= 0.01]
    for p in paper_like:
        assert p.largest_block.mean <= 10


def test_largest_block_grows_superlinearly(points):
    # Between 1% and 10% density the largest block should grow by far
    # more than the 10x fault increase.
    one = next(p for p in points if p.density == 0.01)
    ten = next(p for p in points if p.density == 0.10)
    assert ten.largest_block.mean > 10 * one.largest_block.mean


def test_phase2_frees_almost_everything_below_percolation(points):
    # Below the ~10% percolation transition phase 2 frees > 90% of the
    # imprisoned nodes; past it the mesh fuses into one giant block and
    # the freed fraction collapses — the measured boundary of the
    # paper's "random faults make small blocks" regime.
    for p in points:
        if 0 < p.density <= 0.05:
            assert p.freed_fraction.mean > 0.9
    assert points[-1].freed_fraction.mean < 0.5


def test_giant_component_survives_moderate_density(points):
    moderate = [p for p in points if p.density <= 0.05]
    for p in moderate:
        assert p.largest_enabled_fraction.mean > 0.95


def test_density_kernel_benchmark(benchmark):
    benchmark(
        lambda: density_study(Mesh2D(32, 32), densities=[0.05], trials=2, seed=1)
    )
