"""Saturation campaign: where each fault-model view's network caps out.

Sweeps injection rate over the same clustered-fault machine under the
rectangle faulty-block view and the paper's Def 2a / Def 2b region
views, with byte-identical traffic per rate point (shared endpoint
view, shared seeds).  The sweep locates each view's **saturation
point** — the highest offered load still delivered at ≥ 95% within the
horizon — and the accepted throughput there.  This is the figure the
refined fault model is *for*: a view that imprisons fewer nonfaulty
nodes keeps accepting load after the rectangle view has stopped
tracking it.

The pytest run uses a CI-sized machine; the full-campaign numbers
(256x256, one million packets per view) are produced by the routing
leg of ``benchmarks/perf_baseline.py`` (full mode) and recorded in
``BENCH_perf.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import SafetyDefinition, label_mesh
from repro.faults import clustered
from repro.mesh import Mesh2D
from repro.network import injection_sweep
from repro.routing import FaultModelView

MESH = Mesh2D(48, 48)
FAULTS = 70
PACKETS = 30_000
RATES = (2.0, 8.0, 32.0, 128.0)
MAX_CYCLES = 200_000
#: Horizon per point: 1.5x its injection span (plus hop-budget slack).
#: A view keeping up with the offered load finishes well inside that;
#: a saturated one leaves a stuck backlog.  The margins are ~25% in
#: deterministic cycle counts, so the knee detection is noise-free.
DRAIN_FACTOR = 1.5


@pytest.fixture(scope="module")
def curves():
    rng = np.random.default_rng(21)
    faults = clustered(MESH.shape, FAULTS, rng, clusters=3, spread=1.8)
    result_2a = label_mesh(MESH, faults, SafetyDefinition.DEF_2A)
    result_2b = label_mesh(MESH, faults, SafetyDefinition.DEF_2B)
    views = {
        "rect-fb": FaultModelView.from_blocks(result_2b),
        "regions-2a": FaultModelView.from_regions(result_2a),
        "regions-2b": FaultModelView.from_regions(result_2b),
    }
    inter = np.ones(MESH.shape, dtype=bool)
    for view in views.values():
        inter &= view.enabled
    shared = FaultModelView(MESH, inter)
    return {
        name: injection_sweep(
            view,
            RATES,
            PACKETS,
            seed=5,
            kernel="detour",
            endpoint_view=shared,
            view_label=name,
            max_cycles=MAX_CYCLES,
            drain_factor=DRAIN_FACTOR,
        )
        for name, view in views.items()
    }


def test_saturation_table(curves, emit):
    rows = []
    for name, curve in curves.items():
        for p in curve.points:
            rows.append(
                [
                    name,
                    p.rate,
                    p.delivery_rate,
                    p.throughput,
                    p.mean_latency,
                    p.p99_latency,
                    "sat" if p.saturated else "",
                ]
            )
        rows.append(
            [
                name,
                "knee",
                "",
                curve.saturation_throughput,
                "",
                "",
                curve.saturation_rate,
            ]
        )
    emit(
        "saturation",
        format_table(
            ["view", "rate", "delivery", "thr", "mean_lat", "p99_lat", "note"],
            rows,
            title=(
                f"Injection-rate sweep ({MESH.width}x{MESH.height}, "
                f"{FAULTS} clustered faults, {PACKETS} packets/point)"
            ),
        ),
    )


def test_low_rate_is_unsaturated(curves):
    for name, curve in curves.items():
        assert not curve.points[0].saturated, name
        assert curve.saturation_rate is not None, name


def test_throughput_grows_from_first_point(curves):
    for name, curve in curves.items():
        assert curve.peak_throughput >= curve.points[0].throughput, name


def test_region_views_sustain_block_view_load(curves):
    # At every rate point the block view handles, the region views
    # accept at least (nearly) the same throughput on identical traffic.
    blocks = curves["rect-fb"]
    for other in ("regions-2a", "regions-2b"):
        regions = curves[other]
        for pb, pr in zip(blocks.points, regions.points):
            assert pr.throughput >= 0.9 * pb.throughput, (other, pb.rate)
        assert (
            regions.saturation_throughput >= 0.9 * blocks.saturation_throughput
        ), other


def test_region_views_saturate_no_earlier(curves):
    # The headline: a view that imprisons fewer nonfaulty nodes keeps
    # draining offered load after the rectangle view has backlogged.
    blocks = curves["rect-fb"]
    assert blocks.saturation_rate is not None
    for other in ("regions-2a", "regions-2b"):
        regions = curves[other]
        assert regions.saturation_rate >= blocks.saturation_rate, other
        assert (
            regions.saturation_throughput >= blocks.saturation_throughput
        ), other


def test_latency_diverges_at_saturation(curves):
    # The classic saturation signature: delivered latency at the top
    # rate dwarfs the low-rate latency.
    for name, curve in curves.items():
        first, last = curve.points[0], curve.points[-1]
        if last.saturated:
            assert last.mean_latency > first.mean_latency, name
