"""Broadcast coverage under the two fault models.

Collective communication view of the paper's payoff (its reference [8]
studies multicast on faulty wormhole meshes): flooding broadcasts from
random enabled roots, under the rectangular-block view vs the refined
disabled-region view.  The refined model's activated nodes join the
broadcast — coverage counts rise by exactly the activation count — and
flood depths of commonly enabled nodes never get worse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import label_mesh
from repro.faults import clustered
from repro.mesh import Mesh2D
from repro.routing import FaultModelView, broadcast

MESH = Mesh2D(48, 48)
FAULTS = 70
TRIALS = 8


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(23)
    rows = []
    for trial in range(TRIALS):
        faults = clustered(MESH.shape, FAULTS, rng, clusters=3, spread=2.0)
        labeled = label_mesh(MESH, faults)
        vb = FaultModelView.from_blocks(labeled)
        vr = FaultModelView.from_regions(labeled)
        root, _ = vb.random_enabled_pair(rng)
        rb = broadcast(vb, root)
        rr = broadcast(vr, root)
        rows.append(
            [
                trial,
                len(faults),
                vb.num_enabled,
                vr.num_enabled,
                len(rb.reached),
                len(rr.reached),
                rb.steps,
                rr.steps,
            ]
        )
    return rows


def test_broadcast_table(measurements, emit):
    emit(
        "broadcast_coverage",
        format_table(
            [
                "trial",
                "faults",
                "enab(blk)",
                "enab(reg)",
                "reach(blk)",
                "reach(reg)",
                "steps(blk)",
                "steps(reg)",
            ],
            measurements,
            title=(
                f"Broadcast coverage, block vs region views "
                f"({MESH.width}x{MESH.height}, {FAULTS} clustered faults)"
            ),
        ),
    )


def test_region_view_reaches_more(measurements):
    gains = []
    for row in measurements:
        assert row[5] >= row[4]
        gains.append(row[5] - row[4])
    assert any(g > 0 for g in gains), "activation should add reachable nodes"


def test_steps_never_worse(measurements):
    for row in measurements:
        assert row[7] <= row[6] + 1  # +1 tolerance: deeper frontier of new nodes


def test_broadcast_kernel_benchmark(benchmark):
    rng = np.random.default_rng(2)
    faults = clustered(MESH.shape, FAULTS, rng, clusters=3, spread=2.0)
    labeled = label_mesh(MESH, faults)
    view = FaultModelView.from_regions(labeled)
    root, _ = view.random_enabled_pair(rng)
    benchmark(lambda: broadcast(view, root))
